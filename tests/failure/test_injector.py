"""Unit tests for the crash-point injector itself."""

import pytest

from repro.failure.injector import (
    count_persist_events,
    run_with_crash,
    sweep_crash_points,
)
from repro.nova import NovaFS
from repro.nova.layout import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock


def build():
    dev = PMDevice(512 * PAGE_SIZE, model=DRAM, clock=SimClock())
    fs = NovaFS.mkfs(dev, max_inodes=32)
    dev._fs = fs

    def scenario():
        ino = fs.create("/a")
        fs.write(ino, 0, b"x" * PAGE_SIZE)
        fs.create("/b")

    return dev, scenario


def test_count_persist_events_positive_and_stable():
    n1 = count_persist_events(build)
    n2 = count_persist_events(build)
    assert n1 == n2 > 0


def test_hooks_removed_after_count():
    dev, scenario = build()
    # count_persist_events runs its own build(); on this instance, attach
    # and verify manually that a completed run leaves no hook behind.
    count_persist_events(lambda: (dev, scenario))
    assert dev.hooks.on_persist is None


def test_run_with_crash_trips_at_point():
    out = run_with_crash(build, point=3, phase="pre")
    assert out.crashed
    assert out.point == 3
    assert out.phase == "pre"


def test_point_beyond_scenario_does_not_crash():
    total = count_persist_events(build)
    out = run_with_crash(build, point=total + 100)
    assert not out.crashed


def test_bad_phase_rejected():
    with pytest.raises(ValueError):
        run_with_crash(build, point=1, phase="during")


def test_point_zero_rejected():
    with pytest.raises(ValueError):
        run_with_crash(build, point=0)


def test_pre_phase_discards_the_fenced_lines():
    """A pre-commit crash at event #1 must lose that fence's lines: the
    recovered device is all-volatile-dropped, so a mount sees less state
    than a post-commit crash at the same point."""
    pre = run_with_crash(build, point=1, phase="pre")
    post = run_with_crash(build, point=1, phase="post")
    assert pre.crashed and post.crashed
    # Durable images differ: post persisted one more event than pre.
    assert pre.dev.read_silent(0, pre.dev.size) != post.dev.read_silent(0, post.dev.size)


def test_torn_mode_seeded_deterministically():
    a = run_with_crash(build, point=5, phase="pre", mode="torn", seed=9)
    b = run_with_crash(build, point=5, phase="pre", mode="torn", seed=9)
    assert a.dev.read_silent(0, a.dev.size) == b.dev.read_silent(0, b.dev.size)


def test_sweep_counts_points_and_respects_stride():
    total = count_persist_events(build)
    seen = []

    def check(dev, point, phase):
        seen.append((point, phase))
        NovaFS.mount(dev)

    tested = sweep_crash_points(build, check, phases=("pre",), stride=7)
    assert tested == len(seen) == len(range(1, total + 1, 7))


def test_sweep_max_points_caps():
    seen = []

    def check(dev, point, phase):
        seen.append(point)

    sweep_crash_points(build, check, phases=("pre",), max_points=4)
    assert max(seen) <= 4


def test_sweep_wraps_check_failure_with_context():
    def check(dev, point, phase):
        raise RuntimeError("boom")

    with pytest.raises(AssertionError, match=r"event #1 \(pre-commit"):
        sweep_crash_points(build, check, phases=("pre",))


def test_recovery_mount_works_at_every_point():
    """End-to-end: NOVA must mount after a crash at any persist event."""
    def check(dev, point, phase):
        fs = NovaFS.mount(dev)
        assert fs.last_recovery is not None

    tested = sweep_crash_points(build, check, stride=5)
    assert tested > 0
