"""Every invariant must trip on a device corrupted by hand.

Each test builds a small healthy filesystem, verifies the checker
passes, introduces exactly one corruption, and asserts the checker
fails with the expected message — proving the invariant actually has
teeth (a checker that never fires verifies nothing).
"""

import pytest

from repro.dedup import DeNovaFS
from repro.failure.invariants import InvariantViolation, check_fs_invariants
from repro.nova import NovaFS
from repro.nova.inode import ITYPE_FILE, Inode
from repro.nova.layout import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock

PAGE = b"\x0b" * PAGE_SIZE


def make_nova():
    dev = PMDevice(512 * PAGE_SIZE, model=DRAM, clock=SimClock())
    fs = NovaFS.mkfs(dev, max_inodes=32)
    ino = fs.create("/a")
    fs.write(ino, 0, PAGE * 2)
    fs.create("/b")
    return fs, ino


def make_denova():
    dev = PMDevice(512 * PAGE_SIZE, model=DRAM, clock=SimClock())
    fs = DeNovaFS.mkfs(dev, max_inodes=32)
    a = fs.create("/a")
    fs.write(a, 0, PAGE)
    b = fs.create("/b")
    fs.write(b, 0, PAGE)          # duplicate content: RFC becomes 2
    fs.daemon.drain()
    return fs


def shared_entry(fs):
    (idx, ent), = fs.fact.live_entries().items()
    return idx, ent


class TestBaseline:
    def test_healthy_nova_passes(self):
        fs, _ = make_nova()
        report = check_fs_invariants(fs)
        assert report["page_refs"]

    def test_healthy_denova_passes(self):
        fs = make_denova()
        report = check_fs_invariants(fs)
        assert report["fact"]["live_entries"] == 1


class TestDataInvariants:
    def test_referenced_page_on_free_list(self):
        fs, ino = make_nova()
        page = next(iter(check_fs_invariants(fs)["page_refs"]))
        fs.allocator.free(page, 1, 0)
        with pytest.raises(InvariantViolation, match="free list"):
            check_fs_invariants(fs)

    def test_corrupt_committed_log_entry(self):
        fs, ino = make_nova()
        cache = fs.caches[ino]
        addr, _raw = next(fs.log.iter_slots(cache.inode.log_head,
                                            cache.inode.log_tail,
                                            silent=True))
        fs.dev.write(addr, b"\xff" * 8)
        fs.dev.persist(addr, 8)
        with pytest.raises(InvariantViolation, match="corrupt committed"):
            check_fs_invariants(fs)

    def test_dangling_dentry(self):
        fs, _ = make_nova()
        from repro.nova.inode import ROOT_INO
        fs.caches[ROOT_INO].dentries["ghost"] = 999
        with pytest.raises(InvariantViolation, match="dangling dentry"):
            check_fs_invariants(fs)


class TestInodeTableInvariants:
    def test_valid_record_with_wrong_ino(self):
        fs, _ = make_nova()
        rec = Inode(ino=0, valid=1, itype=ITYPE_FILE, links=1)
        fs.dev.write(fs.itable.addr_of(7), rec.pack())
        fs.dev.persist(fs.itable.addr_of(7), 64)
        with pytest.raises(InvariantViolation, match="carries ino 0"):
            check_fs_invariants(fs)

    def test_leaked_valid_slot(self):
        fs, _ = make_nova()
        free = max(fs.caches) + 1
        rec = Inode(ino=free, valid=1, itype=ITYPE_FILE, links=1)
        fs.dev.write(fs.itable.addr_of(free), rec.pack())
        fs.dev.persist(fs.itable.addr_of(free), 64)
        with pytest.raises(InvariantViolation, match="leaked slot"):
            check_fs_invariants(fs)

    def test_mounted_ino_without_record(self):
        fs, ino = make_nova()
        blank = Inode(ino=ino, valid=0, itype=ITYPE_FILE, links=0)
        fs.dev.write(fs.itable.addr_of(ino), blank.pack())
        fs.dev.persist(fs.itable.addr_of(ino), 64)
        with pytest.raises(InvariantViolation, match="no valid inode"):
            check_fs_invariants(fs)

    def test_bad_itype(self):
        fs, _ = make_nova()
        free = max(fs.caches) + 1
        rec = Inode(ino=free, valid=1, itype=7, links=1)
        fs.dev.write(fs.itable.addr_of(free), rec.pack())
        fs.dev.persist(fs.itable.addr_of(free), 64)
        with pytest.raises(InvariantViolation, match="illegal itype"):
            check_fs_invariants(fs)


class TestFactInvariants:
    def test_rfc_undercount(self):
        fs = make_denova()
        idx, ent = shared_entry(fs)
        assert ent.refcount == 2
        fs.fact._write_u64(idx, 0, 1)  # RFC=1 < 2 live references
        with pytest.raises(InvariantViolation, match="undercounts"):
            check_fs_invariants(fs)

    def test_stale_uc(self):
        fs = make_denova()
        idx, _ = shared_entry(fs)
        fs.fact.inc_uc(idx)
        with pytest.raises(InvariantViolation, match="UC="):
            check_fs_invariants(fs)

    def test_negative_direction_rfc_with_free_block(self):
        fs = make_denova()
        idx, ent = shared_entry(fs)
        fs.allocator.free(ent.block, 1, 0)
        with pytest.raises(InvariantViolation):
            check_fs_invariants(fs)

    def test_duplicate_block_claims(self):
        fs = make_denova()
        idx, ent = shared_entry(fs)
        import hashlib
        other_fp = hashlib.sha1(b"other").digest()
        fs.fact.insert(other_fp, ent.block)
        with pytest.raises(InvariantViolation, match="claim block"):
            check_fs_invariants(fs)

    def test_structural_chain_damage(self):
        from repro.dedup.fact import _OFF_NEXT, FactCorruption

        fs = make_denova()
        idx, _ = shared_entry(fs)
        fs.fact._write_u64(idx, _OFF_NEXT, idx + 1)  # self-cycle
        with pytest.raises((InvariantViolation, FactCorruption)):
            check_fs_invariants(fs)
