"""Mutation self-check: the fuzzer must catch both reintroduced bugs.

A checker proves itself by failing: each known historical bug is
reintroduced behind a test-only mutation flag, and the differential
fuzzer (dense crash-point sweep over a targeted short sequence) must
flag it — and must stay silent with the mutation off.  Each failing
sequence is then shrunk to a <= 10-op reproducer, serialized through
``workloads.trace``, reloaded, and replayed to the same verdict.

* ``rfc_undercount`` — dedup recovery skips the step-6 RFC repair, so a
  crash between a dedup target's tail commit and its count commit
  leaves a shared page's RFC below its live reference count (the
  §IV-D1 data-loss hazard: reclaim would free a page a file still
  maps).
* ``torn_inode_record`` — NOVA recovery skips the inode-table fsck, so
  a torn crash mid-``create`` leaves a half-written record marked valid
  (record ino still zero) that leaks the slot forever.
"""

import base64

import pytest

from repro.failure import mutation
from repro.fuzz.diff import FuzzConfig, run_case
from repro.fuzz.shrink import shrink
from repro.workloads.trace import Trace, TraceOp

PAGE = b"\x07" * 4096


def rfc_ops():
    # One write whose own pages repeat the same image: the dedup drain
    # inserts the canonical entry and stages the duplicate's UC in one
    # transaction, opening the undercount crash window.
    data = PAGE * 3
    return [
        TraceOp(op="create", path="/a"),
        TraceOp(op="write", path="/a", offset=0, length=len(data),
                data_b64=base64.b64encode(data).decode()),
        TraceOp(op="dedup"),
    ]


def torn_ops():
    return [TraceOp(op="create", path=f"/f{i}") for i in range(4)]


RFC_CFG = FuzzConfig(seed=0, budget=10 ** 6, modes=("discard",),
                     phases=("pre",))
TORN_CFG = FuzzConfig(seed=0, budget=10 ** 6, modes=("torn",),
                      phases=("pre",))


class TestMutationRegistry:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            mutation.enable("no_such_bug")
        with pytest.raises(ValueError):
            mutation.disable("no_such_bug")

    def test_context_manager_restores(self):
        assert not mutation.enabled("rfc_undercount")
        with mutation.mutated("rfc_undercount"):
            assert mutation.enabled("rfc_undercount")
        assert not mutation.enabled("rfc_undercount")

    def test_reset_clears_all(self):
        mutation.enable("rfc_undercount")
        mutation.enable("torn_inode_record")
        mutation.reset()
        assert not mutation.active()


def detect_shrink_replay(ops, cfg, match, tmp_path):
    """The shared protocol: detect, shrink, persist, replay, re-detect."""
    res = run_case(ops, cfg)
    assert not res.ok, "mutation not detected"
    assert match in str(res.violations[0])

    reduced = shrink(ops, lambda c: not run_case(c, cfg).ok)
    assert len(reduced) <= 10

    path = tmp_path / "repro.trace"
    Trace(ops=list(reduced)).save(path)
    loaded = Trace.load(path).ops
    r1 = run_case(loaded, cfg)
    r2 = run_case(loaded, cfg)
    assert not r1.ok
    assert [str(v) for v in r1.violations] == [str(v) for v in r2.violations]
    return reduced


class TestRfcUndercount:
    def test_detected_shrunk_and_replayable(self, tmp_path):
        with mutation.mutated("rfc_undercount"):
            detect_shrink_replay(rfc_ops(), RFC_CFG, "undercounts",
                                 tmp_path)

    def test_clean_without_mutation(self):
        mutation.reset()
        assert run_case(rfc_ops(), RFC_CFG).ok


class TestTornInodeRecord:
    def test_detected_shrunk_and_replayable(self, tmp_path):
        with mutation.mutated("torn_inode_record"):
            detect_shrink_replay(torn_ops(), TORN_CFG, "itable", tmp_path)

    def test_clean_without_mutation(self):
        mutation.reset()
        assert run_case(torn_ops(), TORN_CFG).ok
