"""Front-tier persistent staging log (repro.nova.staging).

Covers the whole staged-op lifecycle: absorption (writes *and* creates),
read-your-writes overlay, conflict drains, unlink discard ordering,
clean-unmount destage, crash replay (including torn records and
watermark idempotence), quota parity with the direct path, slab-full
fallback, the fuzz harness integration, and destage determinism under
the workload runner.
"""

import pytest

from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.nova.fs import FSError
from repro.tenant import QuotaExceeded

pytestmark = pytest.mark.staging

PAGE = b"\x5a" * PAGE_SIZE


def build_fs(variant=Variant.DELAYED, **kw):
    kw.setdefault("device_pages", 2048)
    kw.setdefault("max_inodes", 128)
    kw.setdefault("staging", True)
    fs, _dd = make_fs(variant, Config(**kw))
    return fs


def settle(fs):
    if hasattr(fs, "daemon"):
        fs.daemon.drain()


def crash_remount(fs, mode="discard"):
    fs.dev.crash(mode)
    return type(fs).mount(fs.dev.recover_view())


# ---------------------------------------------------------------- absorb


class TestAbsorb:
    def test_small_write_absorbed_and_read_back(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"hello staging")
        st = fs.staging.stats()
        assert st["absorbed"] == 1
        assert st["pending_records"] >= 1
        # Read-your-writes through the overlay, before any destage.
        assert fs.read(ino, 0, 13) == b"hello staging"
        assert fs.stat(ino).size == 13

    def test_create_absorbed(self):
        fs = build_fs()
        ino = fs.create("/staged")
        st = fs.staging.stats()
        assert st["absorbed_creates"] == 1
        assert fs.staging.has_pending_create(ino)
        assert fs.lookup("/staged") == ino

    def test_large_write_takes_direct_path(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, PAGE * 2)          # > threshold: direct
        assert fs.staging.stats()["absorbed"] == 0
        assert fs.read(ino, 0, PAGE_SIZE) == PAGE

    def test_overlay_later_record_wins(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"AAAA")
        fs.write(ino, 2, b"BB")
        assert fs.read(ino, 0, 4) == b"AABB"

    def test_staging_disabled_by_default(self):
        fs, _dd = make_fs(Variant.DELAYED,
                          Config(device_pages=1024, max_inodes=64))
        ino = fs.create("/f")
        fs.write(ino, 0, b"x")
        assert not fs.staging_enabled
        assert fs.staging.stats()["absorbed"] == 0
        assert fs.staging.stats()["absorbed_creates"] == 0

    def test_enable_requires_region(self):
        fs, _dd = make_fs(Variant.DELAYED,
                          Config(device_pages=1024, max_inodes=64,
                                 staging_pages=0))
        assert fs.staging is None
        with pytest.raises(FSError, match="no staging region"):
            fs.enable_staging()


# ---------------------------------------------------------------- destage


class TestDestage:
    def test_drain_all_persists_through_write_path(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"payload")
        n = fs.staging.drain_all()
        assert n == 2                        # create + write
        assert fs.staging.stats()["pending_records"] == 0
        assert fs.read(ino, 0, 7) == b"payload"

    def test_big_write_drains_staged_records_first(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"small")
        fs.write(ino, 0, PAGE * 2)           # conflicting direct write
        assert not fs.staging.has_pending(ino)
        assert fs.read(ino, 0, PAGE_SIZE) == PAGE

    def test_truncate_drains(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"0123456789")
        fs.truncate(ino, 4)
        # The staged create + write destaged before the truncate ran
        # (the zero-fill head rewrite may stage a fresh record after).
        assert fs.staging.stats()["destaged"] >= 2
        assert fs.stat(ino).size == 4
        assert fs.read(ino, 0, 4) == b"0123"
        fs2 = crash_remount(fs)
        ino2 = fs2.lookup("/f")
        assert fs2.stat(ino2).size == 4
        assert fs2.read(ino2, 0, 4) == b"0123"

    def test_unmount_drains_and_remount_is_clean(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"durable")
        fs.unmount()
        fs2 = type(fs).mount(fs.dev)
        rep = fs2.last_recovery.extra.get("staging", {})
        assert rep.get("replayed", 0) == 0   # nothing left to replay
        assert fs2.read(fs2.lookup("/f"), 0, 7) == b"durable"

    def test_destage_order_preserved(self):
        fs = build_fs()
        ino = fs.create("/f")
        for i in range(8):
            fs.write(ino, i, bytes([0x30 + i]))
        fs.staging.drain_ino(ino)
        assert fs.read(ino, 0, 8) == b"01234567"


# ------------------------------------------------------------- namespace


class TestNamespaceConflicts:
    def test_unlink_staged_create_discards(self):
        """A file that only ever existed in the staging log leaves no
        trace: discard, not drain (no inode/dentry is ever persisted)."""
        fs = build_fs()
        fs.create("/ephemeral")
        before = fs.staging.stats()["destaged"]
        fs.unlink("/ephemeral")
        st = fs.staging.stats()
        assert st["destaged"] == before      # nothing was destaged
        assert st["discarded"] >= 1
        assert not fs.exists("/ephemeral")

    def test_unlink_staged_create_crash_no_resurrection(self):
        """Watermark persists before the dentry-remove commit, so no
        crash point can replay the create after the unlink committed."""
        fs = build_fs()
        fs.create("/gone")
        fs.unlink("/gone")
        fs2 = crash_remount(fs)
        assert not fs2.exists("/gone")

    def test_rename_drains_pending_create(self):
        fs = build_fs()
        ino = fs.create("/a")
        fs.write(ino, 0, b"data")
        fs.rename("/a", "/b")
        assert not fs.staging.has_pending_create(ino)
        fs2 = crash_remount(fs)
        assert not fs2.exists("/a")
        got = fs2.read(fs2.lookup("/b"), 0, 4)
        assert got in (b"data", b"\x00\x00\x00\x00")  # write may be staged

    def test_link_drains_pending_create(self):
        fs = build_fs()
        ino = fs.create("/orig")
        fs.link("/orig", "/alias")
        assert not fs.staging.has_pending_create(ino)
        fs2 = crash_remount(fs)
        assert fs2.lookup("/orig") == fs2.lookup("/alias")


# --------------------------------------------------------------- recovery


class TestCrashReplay:
    def test_staged_write_survives_crash(self):
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"must survive")
        fs2 = crash_remount(fs)
        rep = fs2.last_recovery.extra["staging"]
        assert rep["replayed"] == 2          # create + write
        ino2 = fs2.lookup("/f")
        assert ino2 == ino                   # replay reuses the staged ino
        assert fs2.read(ino2, 0, 12) == b"must survive"

    def test_replay_idempotent_watermark(self):
        """A second remount replays nothing: the first replay advanced
        the persisted watermark past every record."""
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"once")
        fs2 = crash_remount(fs)
        settle(fs2)
        fs2.unmount()
        fs3 = type(fs2).mount(fs2.dev)
        rep = fs3.last_recovery.extra.get("staging", {})
        assert rep.get("replayed", 0) == 0
        assert fs3.read(fs3.lookup("/f"), 0, 4) == b"once"

    def test_torn_record_not_replayed(self):
        """Corrupting a staged record's payload fails its CRC: the
        append never committed, so replay must stop at it."""
        fs = build_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"good")
        fs.staging.drain_all()               # watermark covers both
        fs.write(ino, 100, b"torn")
        slab = fs.staging._slabs[ino % fs.staging.nslabs]
        rec = slab.recs[-1]
        assert rec.data == b"torn"
        # Flip one durable payload byte behind the CRC's back.
        off = slab.write_off - 64            # last 64 B-aligned record
        fs.dev.write(off + 40, b"\xff", nt=True)
        fs.dev.sfence()
        fs2 = crash_remount(fs)
        # Nothing replayed: a clean scan doesn't even report staging.
        rep = fs2.last_recovery.extra.get("staging", {"replayed": 0})
        assert rep["replayed"] == 0
        assert fs2.read(fs2.lookup("/f"), 0, 4) == b"good"
        assert fs2.stat(fs2.lookup("/f")).size == 4  # torn write undone

    def test_shared_slab_drain_never_replays_superseded_write(self):
        """Slabs are shared (ino % nslabs): with one slab, /blocker's
        pending records sit ahead of /victim's, so the prefix watermark
        cannot cover /victim's drained records.  The per-record
        tombstones must — a crash after the conflicting direct write
        must never replay the stale staged bytes over it."""
        fs = build_fs(staging_pages=16)      # one slab for every ino
        blocker = fs.create("/blocker")
        fs.write(blocker, 0, b"hold")        # stays pending in the slab
        victim = fs.create("/victim")
        fs.write(victim, 0, b"stalebytes")
        fs.write(victim, 0, PAGE * 2)        # conflict: drains, then CoW
        assert fs.staging.has_pending(blocker)   # watermark is stuck
        fs2 = crash_remount(fs)
        v2 = fs2.lookup("/victim")
        assert fs2.read(v2, 0, 10) == PAGE[:10]  # not b"stalebytes"
        assert fs2.read(fs2.lookup("/blocker"), 0, 4) == b"hold"

    def test_shared_slab_unlink_never_resurrects_staged_create(self):
        """Same shared-slab squeeze for discard: /gone's staged create
        cannot be covered by the watermark while /keep's records are
        pending, so its tombstone must keep a post-unlink crash from
        resurrecting the file."""
        fs = build_fs(staging_pages=16)
        keep = fs.create("/keep")
        fs.write(keep, 0, b"keep")           # pending ahead in the slab
        fs.create("/gone")
        fs.unlink("/gone")
        fs2 = crash_remount(fs)
        assert not fs2.exists("/gone")
        assert fs2.read(fs2.lookup("/keep"), 0, 4) == b"keep"

    def test_shared_slab_discarded_body_never_lands_on_reused_ino(self):
        """_drop_file_body's discard must also invalidate durably: a
        released-and-reused ino must not inherit its dead predecessor's
        staged writes after a crash."""
        fs = build_fs(staging_pages=16)
        blocker = fs.create("/blocker")
        fs.write(blocker, 0, b"hold")        # keeps the watermark stuck
        victim = fs.create("/victim")
        fs.staging.drain_ino(victim)         # /victim fully persistent
        fs.write(victim, 0, b"DEADBEEF")     # staged overwrite, pending
        fs.unlink("/victim")                 # discards + releases ino
        fresh = fs.create("/fresh")          # may reuse victim's ino
        fs2 = crash_remount(fs)
        if fs2.exists("/fresh"):
            f2 = fs2.lookup("/fresh")
            assert f2 == fresh
            assert fs2.stat(f2).size == 0    # no stale bytes replayed

    def test_replay_discards_unlinked_target(self):
        fs = build_fs()
        a = fs.create("/keep")
        fs.write(a, 0, b"keep")
        fs.staging.drain_all()               # /keep fully persistent
        fs.write(a, 0, b"KEEP")              # staged overwrite
        fs.unlink("/keep")                   # discards the staged record
        fs2 = crash_remount(fs)
        # Either outcome is legal (unlink committed or not), but the
        # staged overwrite must never land on a deleted inode silently.
        if fs2.exists("/keep"):
            assert fs2.read(fs2.lookup("/keep"), 0, 4) in (b"keep", b"KEEP")


# ----------------------------------------------------------------- quota


class TestQuotaParity:
    def test_staged_and_direct_charges_identical(self):
        charges = {}
        for staged in (True, False):
            fs = build_fs()
            if not staged:
                fs.disable_staging()
            fs.tenant_create("tn0")
            ino = fs.create("/t/tn0/f")
            fs.write(ino, 0, b"x" * 100)
            fs.write(ino, PAGE_SIZE, b"y" * 100)
            if staged:
                fs.staging.drain_all()
            settle(fs)
            s = fs.tenant_stats()["tn0"]
            charges[staged] = (s["used_pages"], s["used_inodes"])
        assert charges[True] == charges[False] == (2, 2)

    def test_quota_enforced_at_stage_time(self):
        fs = build_fs()
        fs.tenant_create("tight", quota_pages=2)
        ino = fs.create("/t/tight/f")
        fs.write(ino, 0, b"a")               # page 0
        fs.write(ino, PAGE_SIZE, b"b")       # page 1
        with pytest.raises(QuotaExceeded):
            fs.write(ino, 2 * PAGE_SIZE, b"c")
        # The two admitted writes still destage fine under the bypass.
        assert fs.staging.drain_all() >= 2
        assert fs.tenant_stats()["tight"]["used_pages"] == 2

    def test_burst_to_same_page_gross_check_matches_direct(self):
        """The staged gross check mirrors the direct path's: an
        overwrite at a full quota is rejected either way, and with
        headroom the burst net-charges one page either way."""
        for staged in (True, False):
            fs = build_fs()
            if not staged:
                fs.disable_staging()
            fs.tenant_create("one", quota_pages=1)
            ino = fs.create("/t/one/f")
            fs.write(ino, 0, b"z" * 16)
            with pytest.raises(QuotaExceeded):
                fs.write(ino, 16, b"z" * 16)   # gross CoW check: 1+1 > 1
        for staged in (True, False):
            fs = build_fs()
            if not staged:
                fs.disable_staging()
            fs.tenant_create("two", quota_pages=2)
            ino = fs.create("/t/two/f")
            for i in range(4):
                fs.write(ino, i * 16, b"z" * 16)
            if staged:
                fs.staging.drain_all()
            settle(fs)
            assert fs.tenant_stats()["two"]["used_pages"] == 1


# ------------------------------------------------------------ back-pressure


class TestSlabPressure:
    def test_slab_full_falls_back_to_direct(self):
        fs = build_fs(staging_pages=16)      # one slab, ~15 records
        ino = fs.create("/f")
        for i in range(40):
            fs.write(ino, i * PAGE_SIZE, PAGE)
        st = fs.staging.stats()
        assert st["fallbacks"] >= 1          # slab filled at least once
        for i in range(40):
            assert fs.read(ino, i * PAGE_SIZE, PAGE_SIZE) == PAGE

    def test_slab_fill_reports_occupancy(self):
        fs = build_fs()
        ino = fs.create("/f")
        assert fs.staging.slab_fill(ino) >= 0.0
        fs.write(ino, 0, PAGE)
        assert fs.staging.slab_fill(ino) > 0.0
        fs.staging.drain_ino(ino)
        assert fs.staging.slab_fill(ino) == 0.0


# ------------------------------------------------------------------ fuzz


class TestFuzzIntegration:
    def test_run_case_with_staging_clean(self):
        from repro.fuzz.diff import FuzzConfig, run_case
        from repro.fuzz.gen import generate_sequence
        cfg = FuzzConfig(seed=7, seq_ops=30, budget=4, staging=True)
        ops = generate_sequence(7, 0, 30)
        res = run_case(ops, cfg)
        assert res.ok, [str(v) for v in res.violations]
        assert res.crash_points > 0

    def test_run_case_with_staging_tenants(self):
        from repro.fuzz.diff import FuzzConfig, run_case
        from repro.fuzz.gen import generate_tenant_sequence
        cfg = FuzzConfig(seed=11, seq_ops=30, budget=4, staging=True,
                         tenants=2)
        ops = generate_tenant_sequence(11, 0, 30, tenants=2)
        res = run_case(ops, cfg)
        assert res.ok, [str(v) for v in res.violations]


# ------------------------------------------------------------- the runner


class TestRunnerDeterminism:
    @staticmethod
    def _final_state(staging: bool):
        from repro.workloads import run_workload, small_file_job
        fs, dd = make_fs(Variant.DELAYED,
                         Config(device_pages=4096, max_inodes=256,
                                cpus=4, staging=staging))
        spec = small_file_job(nfiles=48, dup_ratio=0.5, threads=4)
        res = run_workload(fs, spec, dd, destage_workers=1)
        settle(fs)
        state = {}
        for dirpath, _dirs, files in fs.walk("/"):
            for name in files:
                path = f"{dirpath.rstrip('/')}/{name}"
                ino = fs.lookup(path)
                size = fs.stat(ino).size
                state[path] = fs.read(ino, 0, size)
        return res, state, fs

    def test_destage_reproduces_staging_off_state(self):
        """workers=1 destage replays each inode's records in stage
        order, so the final bytes match a staging-off run exactly."""
        res_on, state_on, fs_on = self._final_state(True)
        res_off, state_off, _ = self._final_state(False)
        assert state_on == state_off
        st = fs_on.staging.stats()
        assert st["absorbed"] + st["absorbed_creates"] > 0
        assert st["pending_records"] == 0    # pool drained everything
        assert res_on.destage_records == st["destaged"]

    def test_staging_reduces_foreground_time(self):
        res_on, _, _ = self._final_state(True)
        res_off, _, _ = self._final_state(False)
        assert res_on.foreground_ns < res_off.foreground_ns
