"""Unit tests for the simulated clock."""

import pytest

from repro.pm import SimClock


def test_advance_moves_now():
    clk = SimClock()
    clk.advance(100.0)
    clk.advance(50.0)
    assert clk.now_ns == 150.0


def test_negative_advance_rejected():
    clk = SimClock()
    with pytest.raises(ValueError):
        clk.advance(-1.0)


def test_capture_absorbs_charges_without_moving_now():
    clk = SimClock(start_ns=10.0)
    with clk.capture() as cap:
        clk.advance(5.0)
        clk.advance(7.0)
    assert cap.total_ns == 12.0
    assert clk.now_ns == 10.0
    clk.advance(1.0)
    assert clk.now_ns == 11.0


def test_nested_captures_charge_innermost_only():
    clk = SimClock()
    with clk.capture() as outer:
        clk.advance(3.0)
        with clk.capture() as inner:
            clk.advance(8.0)
        clk.advance(1.0)
    assert inner.total_ns == 8.0
    assert outer.total_ns == 4.0
    assert clk.now_ns == 0.0


def test_sync_to_moves_forward_only():
    clk = SimClock()
    clk.sync_to(500.0)
    assert clk.now_ns == 500.0
    with pytest.raises(ValueError):
        clk.sync_to(100.0)


def test_capturing_flag():
    clk = SimClock()
    assert not clk.capturing
    with clk.capture():
        assert clk.capturing
    assert not clk.capturing
