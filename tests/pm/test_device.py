"""Unit tests for the PM device: data path, persistence, crash semantics."""

import numpy as np
import pytest

from repro.pm import CACHELINE, DRAM, PMDevice, SimClock


def make_dev(size=4096 * 4, **kw):
    return PMDevice(size, model=DRAM, clock=SimClock(), **kw)


class TestDataPath:
    def test_write_then_read_roundtrip(self):
        dev = make_dev()
        dev.write(128, b"hello pm world")
        assert dev.read(128, 14) == b"hello pm world"

    def test_read_of_untouched_memory_is_zero(self):
        dev = make_dev()
        assert dev.read(0, 32) == bytes(32)

    def test_out_of_bounds_rejected(self):
        dev = make_dev(size=256)
        with pytest.raises(ValueError):
            dev.read(250, 10)
        with pytest.raises(ValueError):
            dev.write(256, b"x")
        with pytest.raises(ValueError):
            dev.read(-1, 4)

    def test_size_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            PMDevice(100)

    def test_typed_helpers_roundtrip(self):
        dev = make_dev()
        dev.write_u32(64, 0xDEADBEEF)
        assert dev.read_u32(64) == 0xDEADBEEF
        dev.write_atomic64(72, 2**63 + 5)
        assert dev.read_u64(72) == 2**63 + 5
        dev.write_i64(80, -42)
        assert dev.read_i64(80) == -42

    def test_atomic64_requires_alignment(self):
        dev = make_dev()
        with pytest.raises(ValueError):
            dev.write_atomic64(3, 1)

    def test_zero_range(self):
        dev = make_dev()
        dev.write(0, b"\xff" * 256)
        dev.zero_range(64, 128)
        assert dev.read(0, 64) == b"\xff" * 64
        assert dev.read(64, 128) == bytes(128)
        assert dev.read(192, 64) == b"\xff" * 64

    def test_costs_charged_to_clock(self):
        dev = make_dev()
        t0 = dev.clock.now_ns
        dev.write(0, b"x" * 4096)
        t1 = dev.clock.now_ns
        assert t1 > t0
        dev.read(0, 4096)
        assert dev.clock.now_ns > t1

    def test_read_silent_charges_nothing(self):
        dev = make_dev()
        dev.write(0, b"abc")
        t = dev.clock.now_ns
        assert dev.read_silent(0, 3) == b"abc"
        assert dev.clock.now_ns == t

    def test_stats_counters(self):
        dev = make_dev()
        dev.write(0, b"abcd")
        dev.write(64, b"ef", nt=True)
        dev.read(0, 4)
        assert dev.stats.writes == 2
        assert dev.stats.nt_writes == 1
        assert dev.stats.bytes_written == 6
        assert dev.stats.reads == 1
        assert dev.stats.bytes_read == 4


class TestPersistence:
    def test_unflushed_write_lost_on_crash(self):
        dev = make_dev()
        dev.write(0, b"volatile!")
        dev.crash()
        dev.recover_view()
        assert dev.read(0, 9) == bytes(9)

    def test_flushed_and_fenced_write_survives(self):
        dev = make_dev()
        dev.write(0, b"durable")
        dev.persist(0, 7)
        dev.crash()
        dev.recover_view()
        assert dev.read(0, 7) == b"durable"

    def test_clwb_without_fence_not_durable(self):
        dev = make_dev()
        dev.write(0, b"pending")
        dev.clwb(0, 7)
        dev.crash()
        dev.recover_view()
        assert dev.read(0, 7) == bytes(7)

    def test_nt_write_durable_after_fence_only(self):
        dev = make_dev()
        dev.write(0, b"streamed", nt=True)
        dev2 = make_dev()
        dev2.write(0, b"streamed", nt=True)
        dev2.sfence()
        dev.crash()
        dev.recover_view()
        dev2.crash()
        dev2.recover_view()
        assert dev.read(0, 8) == bytes(8)
        assert dev2.read(0, 8) == b"streamed"

    def test_store_after_clwb_invalidates_writeback(self):
        dev = make_dev()
        dev.write(0, b"old")
        dev.clwb(0, 3)
        dev.write(0, b"new")  # same line: clwb no longer covers it
        dev.sfence()
        dev.crash()
        dev.recover_view()
        assert dev.read(0, 3) == bytes(3)

    def test_partial_line_crash_preserves_other_durable_data(self):
        dev = make_dev()
        dev.write(0, b"AAAA")
        dev.persist(0, 4)
        dev.write(8, b"BBBB")  # same cache line, never persisted
        dev.crash()
        dev.recover_view()
        assert dev.read(0, 4) == b"AAAA"
        assert dev.read(8, 4) == bytes(4)

    def test_volatile_lines_tracks_shadow(self):
        dev = make_dev()
        assert dev.volatile_lines == 0
        dev.write(0, b"x" * 200)  # spans 4 lines
        assert dev.volatile_lines == 4
        dev.persist(0, 200)
        assert dev.volatile_lines == 0

    def test_fence_with_nothing_pending_is_cheap_noop(self):
        dev = make_dev()
        dev.sfence()
        assert dev.stats.lines_persisted == 0

    def test_crash_unknown_mode_rejected(self):
        dev = make_dev()
        with pytest.raises(ValueError):
            dev.crash(mode="lol")

    def test_access_after_crash_requires_recover(self):
        dev = make_dev()
        dev.crash()
        with pytest.raises(RuntimeError):
            dev.read(0, 1)
        dev.recover_view()
        dev.read(0, 1)

    def test_recover_without_crash_rejected(self):
        dev = make_dev()
        with pytest.raises(RuntimeError):
            dev.recover_view()


class TestTornCrash:
    def test_torn_crash_never_tears_an_aligned_word(self):
        """Each aligned 8-byte word is entirely old or entirely new."""
        dev = make_dev()
        old = bytes(range(64))
        dev.write(0, old)
        dev.persist(0, 64)
        new = bytes(255 - b for b in range(64))
        dev.write(0, new)
        dev.crash(mode="torn", rng=np.random.default_rng(7))
        dev.recover_view()
        got = dev.read(0, 64)
        for w in range(8):
            word = got[w * 8:(w + 1) * 8]
            assert word in (old[w * 8:(w + 1) * 8], new[w * 8:(w + 1) * 8])

    def test_torn_crash_is_seed_deterministic(self):
        def run(seed):
            dev = make_dev()
            dev.write(0, bytes(range(64)))
            dev.persist(0, 64)
            dev.write(0, b"\xaa" * 64)
            dev.crash(mode="torn", rng=np.random.default_rng(seed))
            dev.recover_view()
            return dev.read(0, 64)

        assert run(3) == run(3)

    def test_atomic64_store_never_torn(self):
        """An aligned 8-byte store is all-or-nothing even in torn mode."""
        for seed in range(20):
            dev = make_dev()
            dev.write_atomic64(0, 0x1111111111111111)
            dev.persist(0, 8)
            dev.write_atomic64(0, 0x2222222222222222)
            dev.crash(mode="torn", rng=np.random.default_rng(seed))
            dev.recover_view()
            assert dev.read_u64(0) in (0x1111111111111111,
                                       0x2222222222222222)


class TestHooksAndWear:
    def test_persist_hook_sees_event_count(self):
        dev = make_dev()
        events = []
        dev.hooks.on_persist = lambda n, d: events.append(n)
        dev.write(0, b"a")
        dev.persist(0, 1)
        dev.write(64, b"b")
        dev.persist(64, 1)
        assert len(events) == 2

    def test_wear_counts_persisted_lines(self):
        dev = make_dev(track_wear=True)
        dev.write(0, b"x")
        dev.persist(0, 1)
        dev.write(0, b"y")
        dev.persist(0, 1)
        dev.write(CACHELINE, b"z")
        dev.persist(CACHELINE, 1)
        assert dev.wear_max() == 2
        assert dev.wear_total() == 3

    def test_wear_disabled_raises(self):
        dev = make_dev()
        with pytest.raises(RuntimeError):
            dev.wear_max()
