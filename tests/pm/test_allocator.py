"""Unit tests for the per-CPU extent page allocator."""

import pytest

from repro.pm import AllocError, PageAllocator


class TestBasic:
    def test_alloc_returns_contiguous_run(self):
        alloc = PageAllocator(0, 100)
        start = alloc.alloc(10)
        assert 0 <= start <= 90
        assert alloc.free_pages == 90

    def test_alloc_free_roundtrip_restores_pages(self):
        alloc = PageAllocator(0, 100)
        s = alloc.alloc(25)
        alloc.free(s, 25)
        assert alloc.free_pages == 100
        assert alloc.largest_extent() == 100  # merged back

    def test_exhaustion_raises(self):
        alloc = PageAllocator(0, 10)
        alloc.alloc(10)
        with pytest.raises(AllocError):
            alloc.alloc(1)

    def test_fragmentation_blocks_large_contig(self):
        alloc = PageAllocator(0, 10)
        runs = [alloc.alloc(2) for _ in range(5)]
        alloc.free(runs[1], 2)
        alloc.free(runs[3], 2)
        assert alloc.free_pages == 4
        with pytest.raises(AllocError):
            alloc.alloc(4)  # free pages exist but not contiguous
        assert alloc.alloc(2) in (runs[1], runs[3])

    def test_bad_args(self):
        with pytest.raises(ValueError):
            PageAllocator(5, 5)
        with pytest.raises(ValueError):
            PageAllocator(0, 10, cpus=0)
        alloc = PageAllocator(0, 10)
        with pytest.raises(ValueError):
            alloc.alloc(0)
        with pytest.raises(ValueError):
            alloc.free(0, 0)
        with pytest.raises(ValueError):
            alloc.free(8, 5)  # beyond range


class TestDoubleFree:
    def test_double_free_detected(self):
        alloc = PageAllocator(0, 100)
        s = alloc.alloc(5)
        alloc.free(s, 5)
        with pytest.raises(ValueError, match="double free"):
            alloc.free(s, 5)

    def test_overlapping_free_detected(self):
        alloc = PageAllocator(0, 100)
        s = alloc.alloc(10)
        alloc.free(s, 5)
        with pytest.raises(ValueError, match="double free"):
            alloc.free(s + 3, 4)


class TestPerCpu:
    def test_pages_split_across_cpus(self):
        alloc = PageAllocator(0, 100, cpus=4)
        assert alloc.free_pages == 100
        for cpu in range(4):
            assert alloc.free_pages_on(cpu) == 25

    def test_local_allocation_preferred(self):
        alloc = PageAllocator(0, 100, cpus=4)
        s = alloc.alloc(5, cpu=2)
        assert 50 <= s < 75  # CPU 2's share
        assert alloc.steals == 0

    def test_steal_when_local_exhausted(self):
        alloc = PageAllocator(0, 100, cpus=4)
        alloc.alloc(25, cpu=0)
        s = alloc.alloc(10, cpu=0)  # must steal
        assert alloc.steals == 1
        assert s >= 25

    def test_cpu_wraps_modulo(self):
        alloc = PageAllocator(0, 100, cpus=4)
        s = alloc.alloc(1, cpu=6)  # 6 % 4 == 2
        assert 50 <= s < 75

    def test_uneven_split_loses_no_pages(self):
        alloc = PageAllocator(0, 103, cpus=4)
        assert alloc.free_pages == 103


class TestIsFree:
    def test_is_free_tracks_allocation(self):
        alloc = PageAllocator(0, 20)
        s = alloc.alloc(5)
        for p in range(s, s + 5):
            assert not alloc.is_free(p)
        alloc.free(s, 5)
        assert all(alloc.is_free(p) for p in range(s, s + 5))


class TestBitmapRecovery:
    def test_from_bitmap_reconstructs_free_runs(self):
        in_use = [False] * 20
        for p in (3, 4, 5, 10, 15):
            in_use[p] = True
        alloc = PageAllocator.from_bitmap(0, 20, in_use, cpus=2)
        assert alloc.free_pages == 15
        for p in (3, 4, 5, 10, 15):
            assert not alloc.is_free(p)
        for p in (0, 6, 11, 16, 19):
            assert alloc.is_free(p)

    def test_from_bitmap_all_used(self):
        alloc = PageAllocator.from_bitmap(0, 5, [True] * 5)
        assert alloc.free_pages == 0

    def test_from_bitmap_respects_lo(self):
        in_use = [True] * 4 + [False] * 6
        alloc = PageAllocator.from_bitmap(4, 10, in_use)
        assert alloc.free_pages == 6
        s = alloc.alloc(6)
        assert s == 4


class TestStressInvariant:
    def test_random_alloc_free_never_loses_pages(self):
        import random

        rng = random.Random(42)
        alloc = PageAllocator(0, 500, cpus=3)
        live: list[tuple[int, int]] = []
        for _ in range(400):
            if live and (rng.random() < 0.45 or alloc.free_pages < 20):
                start, count = live.pop(rng.randrange(len(live)))
                alloc.free(start, count, cpu=rng.randrange(3))
            else:
                count = rng.randint(1, 8)
                try:
                    start = alloc.alloc(count, cpu=rng.randrange(3))
                except AllocError:
                    continue
                live.append((start, count))
            held = sum(c for _, c in live)
            assert alloc.free_pages + held == 500
        # No two live extents overlap.
        spans = sorted(live)
        for (s1, c1), (s2, _c2) in zip(spans, spans[1:]):
            assert s1 + c1 <= s2
