"""Unit tests for the latency model (Table I profiles + calibration)."""

import pytest

from repro.pm import CpuModel, DRAM, OPTANE_DCPM, PCM, PROFILES, STT_RAM


def test_profiles_registered():
    assert set(PROFILES) == {"DRAM", "OptaneDCPM", "PCM", "STT-RAM"}


def test_table1_read_latency_ordering():
    """Table I: STT-RAM < DRAM < PCM <= Optane for reads."""
    assert STT_RAM.read_latency_ns < DRAM.read_latency_ns
    assert DRAM.read_latency_ns < PCM.read_latency_ns
    assert PCM.read_latency_ns <= OPTANE_DCPM.read_latency_ns


def test_table1_optane_read_2_to_6x_dram():
    ratio = OPTANE_DCPM.read_latency_ns / DRAM.read_latency_ns
    assert 2.0 <= ratio <= 8.0


def test_table1_optane_write_near_dram():
    """Optane write latency is 60-100 ns, within ~3x of DRAM."""
    assert OPTANE_DCPM.write_latency_ns <= 3 * DRAM.write_latency_ns


def test_table1_endurance_ordering():
    assert (OPTANE_DCPM.write_endurance < PCM.write_endurance
            < STT_RAM.write_endurance < DRAM.write_endurance)


def test_read_cost_latency_plus_bandwidth():
    cost_small = OPTANE_DCPM.read_cost(64)
    cost_big = OPTANE_DCPM.read_cost(4096)
    assert cost_small > OPTANE_DCPM.read_latency_ns
    # Bulk read is bandwidth-dominated, not 64x the small read.
    assert cost_big < 64 * cost_small


def test_write_cost_monotone_in_size():
    sizes = [64, 256, 4096, 65536]
    costs = [OPTANE_DCPM.write_cost(s) for s in sizes]
    assert costs == sorted(costs)


def test_sha1_calibration_matches_table4_regime():
    """Table IV: fingerprinting a 4 KB chunk costs ~11.8 us."""
    cpu = CpuModel()
    fp_us = cpu.sha1_cost(4096) / 1000.0
    assert 10.0 <= fp_us <= 14.0


def test_fingerprint_dominates_write_eq1():
    """Eq. 1 (T_w << T_f) must hold structurally in the cost model."""
    cpu = CpuModel()
    for nbytes in (4096, 16384, 131072, 1 << 20):
        t_w = OPTANE_DCPM.write_cost(nbytes)
        t_f = cpu.sha1_cost(nbytes)
        assert t_f > 2 * t_w, f"T_f must dominate T_w at {nbytes} bytes"


def test_weak_fingerprint_cheaper_than_strong():
    cpu = CpuModel()
    assert cpu.crc32_cost(4096) < cpu.sha1_cost(4096) / 5


def test_with_cpu_replaces_cpu_model():
    fast = CpuModel(sha1_ns_per_byte=0.5)
    model = OPTANE_DCPM.with_cpu(fast)
    assert model.cpu.sha1_ns_per_byte == 0.5
    assert model.read_latency_ns == OPTANE_DCPM.read_latency_ns
    assert OPTANE_DCPM.cpu.sha1_ns_per_byte != 0.5


def test_models_are_frozen():
    with pytest.raises(Exception):
        OPTANE_DCPM.read_latency_ns = 1.0  # type: ignore[misc]
