"""Unit tests for the duplicate-ratio-controlled data generator."""

import pytest

from repro.workloads import DataGenerator


class TestDuplicateControl:
    def test_alpha_zero_all_unique(self):
        gen = DataGenerator(alpha=0.0, seed=1)
        pages = gen.pages(200)
        assert len(set(pages)) == 200
        assert gen.realized_alpha == 0.0

    def test_alpha_one_all_from_pool(self):
        gen = DataGenerator(alpha=1.0, seed=1, dup_pool_size=4)
        pages = gen.pages(100)
        assert len(set(pages)) <= 4
        assert gen.realized_alpha == 1.0

    def test_alpha_half_converges(self):
        gen = DataGenerator(alpha=0.5, seed=3)
        gen.pages(2000)
        assert 0.45 <= gen.realized_alpha <= 0.55

    def test_dedupable_fraction_matches_alpha(self):
        """What a dedup system can actually save approximates alpha."""
        gen = DataGenerator(alpha=0.6, seed=5, dup_pool_size=8)
        pages = gen.pages(1000)
        unique = len(set(pages))
        saving = 1 - unique / len(pages)
        assert 0.5 <= saving <= 0.65

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            DataGenerator(alpha=1.5)
        with pytest.raises(ValueError):
            DataGenerator(alpha=-0.1)
        with pytest.raises(ValueError):
            DataGenerator(alpha=0.5, dup_pool_size=0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DataGenerator(alpha=0.5, seed=9).pages(50)
        b = DataGenerator(alpha=0.5, seed=9).pages(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = DataGenerator(alpha=0.0, seed=1).pages(10)
        b = DataGenerator(alpha=0.0, seed=2).pages(10)
        assert a != b

    def test_streams_share_pool_but_not_uniques(self):
        g0 = DataGenerator(alpha=1.0, seed=7, stream=0, dup_pool_size=4)
        g1 = DataGenerator(alpha=1.0, seed=7, stream=1, dup_pool_size=4)
        assert set(g0.pages(100)) == set(g1.pages(100))  # same pool
        u0 = DataGenerator(alpha=0.0, seed=7, stream=0).pages(100)
        u1 = DataGenerator(alpha=0.0, seed=7, stream=1).pages(100)
        assert not set(u0) & set(u1)  # disjoint uniques


class TestFileData:
    def test_file_data_length(self):
        gen = DataGenerator(alpha=0.3, seed=1)
        assert len(gen.file_data(10000)) == 10000
        assert len(gen.file_data(4096)) == 4096

    def test_page_size_respected(self):
        gen = DataGenerator(alpha=0.0, seed=1, page_size=512)
        pages = gen.pages(4)
        assert all(len(p) == 512 for p in pages)

    def test_empty_request(self):
        gen = DataGenerator(alpha=0.5, seed=1)
        assert gen.pages(0) == []
