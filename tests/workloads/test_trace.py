"""Tests for trace record/replay and cross-variant equivalence."""

import pytest

from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.workloads import DataGenerator
from repro.workloads.trace import Trace, TracedFS, TraceMismatch, replay


def build(variant=Variant.IMMEDIATE):
    fs, _ = make_fs(variant, Config(device_pages=2048, max_inodes=128))
    return fs


def run_scenario(tfs):
    """A workload exercising every traced operation."""
    gen = DataGenerator(alpha=0.5, seed=8, dup_pool_size=4)
    tfs.mkdir("/dir")
    for i in range(6):
        ino = tfs.create(f"/dir/f{i}")
        tfs.write(ino, 0, gen.file_data(2 * PAGE_SIZE))
    a = tfs.lookup("/dir/f0")
    tfs.read(a, 0, 2 * PAGE_SIZE)
    tfs.write(a, 100, b"patch!")
    tfs.read(a, 0, 200)
    tfs.truncate(a, PAGE_SIZE)
    tfs.rename("/dir/f1", "/dir/renamed")
    tfs.link("/dir/f2", "/dir/alias")
    tfs.unlink("/dir/f3")
    tfs.read(tfs.lookup("/dir/renamed"), 0, PAGE_SIZE)


class TestRecord:
    def test_operations_recorded(self):
        tfs = TracedFS(build())
        run_scenario(tfs)
        ops = [o.op for o in tfs.trace.ops]
        for kind in ("mkdir", "create", "write", "read", "truncate",
                     "rename", "link", "unlink"):
            assert kind in ops

    def test_reads_optional(self):
        tfs = TracedFS(build(), record_reads=False)
        run_scenario(tfs)
        assert "read" not in {o.op for o in tfs.trace.ops}

    def test_proxy_passthrough(self):
        tfs = TracedFS(build())
        ino = tfs.create("/f")
        tfs.write(ino, 0, b"abc")
        assert tfs.stat(ino).size == 3
        assert tfs.exists("/f")
        assert "f" in tfs.listdir("/")
        assert tfs.statfs()["free_pages"] > 0  # __getattr__ delegation

    def test_unknown_ino_rejected(self):
        tfs = TracedFS(build())
        # A file created behind the proxy's back has no path mapping.
        ino = tfs.fs.create("/sneaky")
        with pytest.raises(KeyError):
            tfs.write(ino, 0, b"x")


class TestSaveLoad:
    def test_jsonl_roundtrip(self, tmp_path):
        tfs = TracedFS(build())
        run_scenario(tfs)
        path = tmp_path / "trace.jsonl"
        tfs.trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(tfs.trace)
        assert [o.op for o in loaded.ops] == [o.op for o in tfs.trace.ops]
        writes = [o for o in loaded.ops if o.op == "write"]
        assert all(len(o.data) == o.length for o in writes)


class TestReplay:
    def test_replay_reproduces_state(self):
        tfs = TracedFS(build())
        run_scenario(tfs)
        tfs.fs.daemon.drain()
        fresh = build()
        counters = replay(fresh, tfs.trace)
        assert counters["applied"] == len(tfs.trace)
        assert counters["verified_reads"] >= 3
        # Full-tree equivalence.
        assert fresh.listdir("/dir") == tfs.listdir("/dir")
        for name in fresh.listdir("/dir"):
            i1 = tfs.lookup(f"/dir/{name}")
            i2 = fresh.lookup(f"/dir/{name}")
            size = tfs.stat(i1).size
            assert fresh.stat(i2).size == size
            assert fresh.read(i2, 0, size) == tfs.read(i1, 0, size)

    def test_cross_variant_equivalence(self):
        """The same trace yields identical bytes on every variant —
        dedup (inline or offline) must be observationally invisible."""
        tfs = TracedFS(build(Variant.BASELINE))
        run_scenario(tfs)
        reference = {}
        for name in tfs.listdir("/dir"):
            ino = tfs.lookup(f"/dir/{name}")
            reference[name] = tfs.read(ino, 0, tfs.stat(ino).size)

        for variant in (Variant.IMMEDIATE, Variant.INLINE,
                        Variant.INLINE_ADAPTIVE):
            fs = build(variant)
            replay(fs, tfs.trace, drain_every=3)
            assert fs.listdir("/dir") == sorted(reference)
            for name, data in reference.items():
                ino = fs.lookup(f"/dir/{name}")
                assert fs.read(ino, 0, len(data) + 1) == data, \
                    f"{variant.value}: {name} diverged"

    def test_verify_catches_divergence(self):
        tfs = TracedFS(build())
        ino = tfs.create("/f")
        tfs.write(ino, 0, b"original")
        tfs.read(ino, 0, 8)
        # Tamper: change the write payload but keep the read digest.
        for op in tfs.trace.ops:
            if op.op == "write":
                import base64

                op.data_b64 = base64.b64encode(b"tampered").decode()
        with pytest.raises(TraceMismatch):
            replay(build(), tfs.trace)

    def test_replay_with_interleaved_dedup(self):
        tfs = TracedFS(build(Variant.BASELINE))
        gen = DataGenerator(alpha=0.9, seed=4, dup_pool_size=2)
        for i in range(10):
            ino = tfs.create(f"/f{i}")
            tfs.write(ino, 0, gen.file_data(PAGE_SIZE))
            tfs.read(ino, 0, PAGE_SIZE)
        fs = build(Variant.IMMEDIATE)
        counters = replay(fs, tfs.trace, drain_every=1)
        assert counters["verified_reads"] == 10
        assert fs.space_stats()["space_saving"] > 0.5
