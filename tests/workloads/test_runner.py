"""Tests for the DES workload runner."""

import pytest

from repro.core import Config, Variant, make_fs
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.workloads import (
    DDMode,
    Mode,
    run_workload,
    small_file_job,
)
from repro.workloads.runner import prepopulate


def build(variant, pages=4096, cpus=4):
    return make_fs(variant, Config(device_pages=pages, max_inodes=1024,
                                   cpus=cpus))


class TestWriteMode:
    def test_all_files_written_and_readable(self):
        fs, dd = build(Variant.IMMEDIATE)
        spec = small_file_job(nfiles=60, dup_ratio=0.5)
        res = run_workload(fs, spec, dd=dd)
        assert res.files_done == 60
        assert res.bytes_moved == 60 * 4096
        assert res.foreground_ns > 0
        for i in range(60):
            ino = fs.lookup(f"/t0/f{i}")
            assert fs.stat(ino).size == 4096
        check_fs_invariants(fs)

    def test_daemon_drains_by_end(self):
        fs, dd = build(Variant.IMMEDIATE)
        res = run_workload(fs, small_file_job(nfiles=40, dup_ratio=0.5),
                           dd=dd)
        assert res.dd_nodes == 40
        assert len(fs.dwq) == 0
        assert res.space["space_saving"] > 0.3

    def test_delayed_mode_also_drains(self):
        fs, dd = build(Variant.DELAYED)
        res = run_workload(fs, small_file_job(nfiles=40, dup_ratio=0.5),
                           dd=DDMode.delayed(0.5, 10))
        assert res.dd_nodes == 40
        assert res.total_ns >= res.foreground_ns

    def test_baseline_has_no_daemon(self):
        fs, dd = build(Variant.BASELINE)
        res = run_workload(fs, small_file_job(nfiles=20), dd=dd)
        assert res.dd_nodes == 0
        with pytest.raises(ValueError):
            run_workload(fs, small_file_job(nfiles=5),
                         dd=DDMode.immediate())

    def test_multithreaded_write(self):
        fs, dd = build(Variant.IMMEDIATE)
        spec = small_file_job(nfiles=64, dup_ratio=0.25, threads=4)
        res = run_workload(fs, spec, dd=dd)
        assert res.files_done == 64
        assert len(res.per_thread_ns) == 4
        for t in range(4):
            assert fs.exists(f"/t{t}/f{t}")
        check_fs_invariants(fs)

    def test_deterministic_given_seed(self):
        def once():
            fs, dd = build(Variant.IMMEDIATE)
            res = run_workload(
                fs, small_file_job(nfiles=30, dup_ratio=0.5, threads=2,
                                   seed=11), dd=dd)
            return (res.foreground_ns, res.total_ns, res.bytes_moved,
                    res.space["physical_pages"])

        assert once() == once()

    def test_think_time_accounted(self):
        fs, dd = build(Variant.BASELINE)
        res = run_workload(fs, small_file_job(nfiles=20), dd=dd)
        assert res.think_ns > 0
        assert res.think_ns == pytest.approx(res.io_ns, rel=0.01)
        fs2, dd2 = build(Variant.BASELINE)
        res2 = run_workload(
            fs2, small_file_job(nfiles=20).with_(think_ratio=0.0), dd=dd2)
        assert res2.think_ns == 0
        assert res2.foreground_ns < res.foreground_ns


class TestOverwriteMode:
    def test_overwrite_replaces_contents(self):
        fs, dd = build(Variant.IMMEDIATE)
        spec = small_file_job(nfiles=30, dup_ratio=0.0)
        inos = prepopulate(fs, spec)
        before = [fs.read(ino, 0, 4096) for ino in inos[:3]]
        res = run_workload(fs, spec.with_(mode=Mode.OVERWRITE), dd=dd,
                           inos=inos)
        assert res.files_done == 30
        after = [fs.read(ino, 0, 4096) for ino in inos[:3]]
        assert all(a != b for a, b in zip(after, before))
        check_fs_invariants(fs)

    def test_overwrite_autoprepopulates(self):
        fs, dd = build(Variant.BASELINE)
        spec = small_file_job(nfiles=10).with_(mode=Mode.OVERWRITE)
        res = run_workload(fs, spec, dd=dd)
        assert res.files_done == 10


class TestReadMode:
    def test_read_throughput_measured(self):
        fs, dd = build(Variant.IMMEDIATE)
        spec = small_file_job(nfiles=30, dup_ratio=0.8)
        inos = prepopulate(fs, spec)
        res = run_workload(fs, spec.with_(mode=Mode.READ), dd=DDMode.none(),
                           inos=inos)
        assert res.files_done == 30
        assert res.bytes_moved == 30 * 4096
        assert res.throughput_mb_s > 0


class TestContentionModel:
    def test_throughput_scales_then_declines(self):
        """The Fig. 9 shape: rising, a peak, then decline."""
        def tput(threads):
            fs, dd = build(Variant.BASELINE, cpus=8)
            res = run_workload(
                fs, small_file_job(nfiles=96, threads=threads, seed=5),
                dd=dd)
            return res.throughput_mb_s

        t1, t2, t32 = tput(1), tput(2), tput(32)
        assert t2 > 1.3 * t1     # scales up
        assert t32 < t2          # oversubscription declines
        assert t32 < t1          # small files collapse when threads pile up

    def test_dwq_contention_small(self):
        """§V-B1: sharing the DWQ costs the foreground < 1-2 %."""
        fs_b, dd_b = build(Variant.BASELINE)
        base = run_workload(fs_b, small_file_job(nfiles=80, seed=3),
                            dd=dd_b)
        fs_d, dd_d = build(Variant.IMMEDIATE)
        deno = run_workload(fs_d, small_file_job(nfiles=80, seed=3),
                            dd=dd_d)
        drop = 1 - deno.throughput_mb_s / base.throughput_mb_s
        assert drop < 0.02, f"offline dedup cost the foreground {drop:.1%}"


class TestRunResult:
    def test_throughput_zero_when_empty(self):
        from repro.workloads.runner import RunResult

        r = RunResult(spec=small_file_job(nfiles=1), dd="none")
        assert r.throughput_mb_s == 0.0
        assert r.files_per_s == 0.0
        assert r.mean_op_latency_us == 0.0

    def test_ddmode_validation(self):
        with pytest.raises(ValueError):
            DDMode.delayed(0, 5)
        with pytest.raises(ValueError):
            DDMode.delayed(5, 0)
        assert str(DDMode.delayed(250, 2000)) == "delayed(250,2000)"
        assert str(DDMode.immediate()) == "immediate"
