"""Edge-case tests for the filesystem surface."""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.entries import MAX_NAME
from repro.nova.fs import FileExists, FileNotFound, FSError, NoSpace
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(pages=512, max_inodes=32, cls=NovaFS):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return cls.mkfs(dev, max_inodes=max_inodes)


class TestPaths:
    def test_empty_path_rejected(self):
        fs = make_fs()
        with pytest.raises(FSError):
            fs.create("")
        with pytest.raises(FSError):
            fs.create("///")

    def test_redundant_slashes_normalized(self):
        fs = make_fs()
        ino = fs.create("//a")
        assert fs.lookup("/a") == ino
        fs.mkdir("/d")
        ino2 = fs.create("/d//b")
        assert fs.lookup("//d///b") == ino2

    def test_max_name_length(self):
        fs = make_fs()
        fs.create("/" + "n" * MAX_NAME)
        with pytest.raises(ValueError):
            fs.create("/" + "n" * (MAX_NAME + 1))

    def test_deep_nesting(self):
        fs = make_fs(pages=2048, max_inodes=128)
        path = ""
        for depth in range(30):
            path += f"/d{depth}"
            fs.mkdir(path)
        leaf = path + "/leaf"
        ino = fs.create(leaf)
        fs.write(ino, 0, b"deep")
        fs.unmount()
        fs2 = NovaFS.mount(fs.dev)
        assert fs2.read(fs2.lookup(leaf), 0, 4) == b"deep"

    def test_many_names_in_one_directory(self):
        fs = make_fs(pages=2048, max_inodes=600)
        for i in range(500):
            fs.create(f"/file_{i:04d}")
        assert len(fs.listdir("/")) == 500
        fs.unmount()
        fs2 = NovaFS.mount(fs.dev)
        assert len(fs2.listdir("/")) == 500


class TestInodeExhaustion:
    def test_create_fails_cleanly_when_table_full(self):
        fs = make_fs(max_inodes=8)
        created = 0
        with pytest.raises(NoSpace):
            for i in range(20):
                fs.create(f"/f{i}")
                created += 1
        assert created == 7  # 8 minus the root
        # Freeing one slot makes creation possible again.
        fs.unlink("/f0")
        fs.create("/reborn")
        check_fs_invariants(fs)

    def test_exhaustion_then_recovery(self):
        fs = make_fs(max_inodes=8)
        for i in range(7):
            fs.create(f"/f{i}")
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        with pytest.raises(NoSpace):
            fs2.create("/overflow")
        fs2.unlink("/f3")
        fs2.create("/ok")


class TestSparseFiles:
    def test_write_at_large_offset(self):
        fs = make_fs(pages=1024)
        ino = fs.create("/sparse")
        offset = 100 * PAGE_SIZE
        fs.write(ino, offset, b"far away")
        assert fs.stat(ino).size == offset + 8
        # Holes cost nothing: only 1 data page + logs allocated.
        assert fs.statfs()["used_pages"] < 10
        assert fs.read(ino, offset - 5, 13) == bytes(5) + b"far away"

    def test_sparse_survives_remount(self):
        fs = make_fs(pages=1024)
        ino = fs.create("/s")
        fs.write(ino, 50 * PAGE_SIZE, b"tail")
        fs.write(ino, 0, b"head")
        fs.unmount()
        fs2 = NovaFS.mount(fs.dev)
        ino2 = fs2.lookup("/s")
        assert fs2.read(ino2, 0, 4) == b"head"
        assert fs2.read(ino2, 50 * PAGE_SIZE, 4) == b"tail"
        assert fs2.read(ino2, 25 * PAGE_SIZE, 8) == bytes(8)

    def test_sparse_dedup_only_touches_real_pages(self):
        fs = make_fs(pages=1024, cls=DeNovaFS)
        ino = fs.create("/s")
        fs.write(ino, 10 * PAGE_SIZE, bytes([3]) * PAGE_SIZE)
        fs.daemon.drain()
        assert fs.daemon.stats.pages_scanned == 1
        assert fs.space_stats()["logical_pages"] == 1


class TestWriteBoundaries:
    def test_single_byte_writes_across_page_boundary(self):
        fs = make_fs()
        ino = fs.create("/f")
        for off in (PAGE_SIZE - 1, PAGE_SIZE, PAGE_SIZE + 1):
            fs.write(ino, off, bytes([off % 256]))
        got = fs.read(ino, PAGE_SIZE - 1, 3)
        assert got == bytes([(PAGE_SIZE - 1) % 256, PAGE_SIZE % 256,
                             (PAGE_SIZE + 1) % 256])

    def test_exact_page_multiple_write(self):
        fs = make_fs()
        ino = fs.create("/f")
        data = b"\x5a" * (3 * PAGE_SIZE)
        fs.write(ino, 0, data)
        assert fs.read(ino, 0, len(data)) == data
        assert fs.stat(ino).size == 3 * PAGE_SIZE

    def test_write_ending_at_page_boundary_no_tail_copy(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"a" * (2 * PAGE_SIZE))
        bytes_before = fs.dev.stats.bytes_read
        fs.write(ino, PAGE_SIZE, b"b" * PAGE_SIZE)  # aligned both ends
        # No head/tail merge page reads (small GC-bookkeeping reads only).
        assert fs.dev.stats.bytes_read - bytes_before < 64

    def test_interleaved_read_write_consistency(self):
        fs = make_fs(pages=1024)
        ino = fs.create("/f")
        state = bytearray()
        import random

        rng = random.Random(11)
        for _ in range(60):
            off = rng.randrange(0, 3 * PAGE_SIZE)
            data = bytes([rng.randrange(256)]) * rng.randrange(1, 600)
            fs.write(ino, off, data)
            if len(state) < off:
                state.extend(bytes(off - len(state)))
            state[off:off + len(data)] = data
            check_off = rng.randrange(0, len(state))
            n = rng.randrange(1, 500)
            expected = bytes(state[check_off:check_off + n])
            assert fs.read(ino, check_off, n) == expected


class TestClockMonotonicity:
    def test_every_operation_advances_time(self):
        fs = make_fs()
        times = [fs.clock.now_ns]

        def tick(op):
            op()
            assert fs.clock.now_ns > times[-1]
            times.append(fs.clock.now_ns)

        ino_box = []
        tick(lambda: ino_box.append(fs.create("/f")))
        ino = ino_box[0]
        tick(lambda: fs.write(ino, 0, b"x" * 100))
        tick(lambda: fs.read(ino, 0, 100))
        tick(lambda: fs.stat(ino))
        tick(lambda: fs.truncate(ino, 10))
        tick(lambda: fs.unlink("/f"))
