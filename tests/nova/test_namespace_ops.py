"""Tests for rename, hard links, and the redo journal."""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.fs import FileExists, FileNotFound, FSError, IsADirectory
from repro.nova.journal import J_ADD, J_REMOVE, Journal, JournalRecord
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(pages=512, cls=NovaFS):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return cls.mkfs(dev, max_inodes=64)


class TestRename:
    def test_same_directory_rename(self):
        fs = make_fs()
        ino = fs.create("/old")
        fs.write(ino, 0, b"payload")
        fs.rename("/old", "/new")
        assert not fs.exists("/old")
        assert fs.lookup("/new") == ino
        assert fs.read(ino, 0, 7) == b"payload"

    def test_cross_directory_rename(self):
        fs = make_fs()
        fs.mkdir("/a")
        fs.mkdir("/b")
        ino = fs.create("/a/f")
        fs.write(ino, 0, b"moved")
        fs.rename("/a/f", "/b/g")
        assert fs.listdir("/a") == []
        assert fs.lookup("/b/g") == ino
        assert fs.read(ino, 0, 5) == b"moved"
        assert not fs.journal.committed

    def test_rename_directory(self):
        fs = make_fs()
        fs.mkdir("/src")
        fs.create("/src/child")
        fs.mkdir("/dst")
        fs.rename("/src", "/dst/moved")
        assert fs.lookup("/dst/moved/child")

    def test_rename_into_own_subtree_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.mkdir("/d/sub")
        with pytest.raises(FSError, match="subtree"):
            fs.rename("/d", "/d/sub/evil")
        with pytest.raises(FSError, match="subtree"):
            fs.rename("/d", "/d/self")

    def test_rename_missing_source(self):
        fs = make_fs()
        with pytest.raises(FileNotFound):
            fs.rename("/ghost", "/x")

    def test_rename_existing_destination_rejected(self):
        fs = make_fs()
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(FileExists):
            fs.rename("/a", "/b")

    def test_rename_survives_clean_remount(self):
        fs = make_fs()
        fs.mkdir("/d1")
        fs.mkdir("/d2")
        ino = fs.create("/d1/f")
        fs.write(ino, 0, b"x" * 5000)
        fs.rename("/d1/f", "/d2/f2")
        fs.unmount()
        fs2 = NovaFS.mount(fs.dev)
        assert fs2.read(fs2.lookup("/d2/f2"), 0, 5000) == b"x" * 5000
        assert not fs2.exists("/d1/f")

    def test_same_dir_rename_is_single_commit(self):
        """Both dentry records ride one tail update — count commits."""
        fs = make_fs()
        fs.create("/a")
        root = fs.caches[1]
        count_before = root.entry_count
        fs.rename("/a", "/b")
        assert root.entry_count == count_before + 2


class TestRenameCrashes:
    def test_cross_dir_rename_crash_sweep(self):
        """At every persistence point the file exists under exactly the
        old or the new name — never both, never neither."""
        def build():
            fs = make_fs()
            fs.mkdir("/a")
            fs.mkdir("/b")
            ino = fs.create("/a/f")
            fs.write(ino, 0, b"precious")

            def scenario():
                fs.rename("/a/f", "/b/g")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            old = fs2.exists("/a/f")
            new = fs2.exists("/b/g")
            assert old != new, f"rename atomicity broken: old={old} new={new}"
            path = "/a/f" if old else "/b/g"
            assert fs2.read(fs2.lookup(path), 0, 8) == b"precious"
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) > 3

    def test_cross_dir_rename_crash_sweep_torn(self):
        def build():
            fs = make_fs()
            fs.mkdir("/a")
            fs.mkdir("/b")
            fs.create("/a/f")

            def scenario():
                fs.rename("/a/f", "/b/g")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            assert fs2.exists("/a/f") != fs2.exists("/b/g")
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check, mode="torn") > 3

    def test_same_dir_rename_crash_sweep(self):
        def build():
            fs = make_fs()
            fs.create("/old")

            def scenario():
                fs.rename("/old", "/new")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            assert fs2.exists("/old") != fs2.exists("/new")
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) >= 1

    def test_rename_crash_sweep_on_denova(self):
        """Rename atomicity also holds with the dedup layer active."""
        def build():
            fs = make_fs(pages=1024, cls=DeNovaFS)
            fs.mkdir("/a")
            fs.mkdir("/b")
            ino = fs.create("/a/f")
            fs.write(ino, 0, bytes([7]) * PAGE_SIZE)
            fs.daemon.drain()

            def scenario():
                fs.rename("/a/f", "/b/g")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = DeNovaFS.mount(dev)
            assert fs2.exists("/a/f") != fs2.exists("/b/g")
            path = "/a/f" if fs2.exists("/a/f") else "/b/g"
            assert fs2.read(fs2.lookup(path), 0, PAGE_SIZE) \
                == bytes([7]) * PAGE_SIZE
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) > 3


class TestHardLinks:
    def test_link_shares_content(self):
        fs = make_fs()
        ino = fs.create("/orig")
        fs.write(ino, 0, b"shared body")
        fs.link("/orig", "/alias")
        assert fs.lookup("/alias") == ino
        assert fs.stat(ino).links == 2

    def test_writes_visible_through_both_names(self):
        fs = make_fs()
        ino = fs.create("/a")
        fs.link("/a", "/b")
        fs.write(fs.lookup("/b"), 0, b"via b")
        assert fs.read(fs.lookup("/a"), 0, 5) == b"via b"

    def test_unlink_one_name_keeps_body(self):
        fs = make_fs()
        ino = fs.create("/a")
        fs.write(ino, 0, b"keep me")
        fs.link("/a", "/b")
        fs.unlink("/a")
        assert not fs.exists("/a")
        assert fs.read(fs.lookup("/b"), 0, 7) == b"keep me"
        assert fs.stat(ino).links == 1

    def test_last_unlink_frees_body(self):
        fs = make_fs()
        fs.create("/warm")
        fs.unlink("/warm")
        free0 = fs.allocator.free_pages
        ino = fs.create("/a")
        fs.write(ino, 0, b"z" * (4 * PAGE_SIZE))
        fs.link("/a", "/b")
        fs.unlink("/a")
        fs.unlink("/b")
        assert fs.allocator.free_pages == free0

    def test_link_to_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.link("/d", "/d2")

    def test_link_existing_name_rejected(self):
        fs = make_fs()
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(FileExists):
            fs.link("/a", "/b")

    def test_links_recovered_after_crash(self):
        fs = make_fs()
        ino = fs.create("/a")
        fs.write(ino, 0, b"x")
        fs.link("/a", "/b")
        fs.link("/a", "/c")
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        ino2 = fs2.lookup("/a")
        assert fs2.stat(ino2).links == 3
        fs2.unlink("/a")
        fs2.unlink("/c")
        assert fs2.read(fs2.lookup("/b"), 0, 1) == b"x"
        check_fs_invariants(fs2)

    def test_hardlinks_with_dedup(self):
        fs = make_fs(pages=1024, cls=DeNovaFS)
        a = fs.create("/a")
        fs.write(a, 0, bytes([5]) * PAGE_SIZE)
        fs.link("/a", "/b")
        fs.daemon.drain()
        fs.unlink("/a")
        assert fs.read(fs.lookup("/b"), 0, PAGE_SIZE) == bytes([5]) * PAGE_SIZE
        check_fs_invariants(fs)


class TestJournalUnit:
    def make(self):
        from repro.nova.layout import Geometry, Superblock

        dev = PMDevice(256 * PAGE_SIZE, model=DRAM, clock=SimClock())
        geo = Geometry.compute(256, max_inodes=32)
        Superblock(dev).format(geo)
        return Journal(dev, geo), dev

    def test_stage_records_roundtrip(self):
        j, dev = self.make()
        recs = [JournalRecord(op=J_ADD, parent_ino=1, name="x", ino=5),
                JournalRecord(op=J_REMOVE, parent_ino=2, name="y", ino=5)]
        j.stage(recs)
        assert j.committed
        assert j.records() == recs
        j.clear()
        assert not j.committed
        assert j.records() == []

    def test_uncommitted_records_invisible(self):
        j, dev = self.make()
        assert j.records() == []

    def test_commit_survives_crash_apply_does_not_need_to(self):
        from repro.nova.layout import Superblock

        j, dev = self.make()
        j.stage([JournalRecord(op=J_ADD, parent_ino=1, name="f", ino=3)])
        dev.crash()
        dev.recover_view()
        j2 = Journal(dev, Superblock(dev).load_geometry())
        assert j2.committed
        assert j2.records()[0].name == "f"

    def test_crash_before_commit_leaves_journal_empty(self):
        j, dev = self.make()
        # Stage manually but crash before the flag store persists: write
        # records, skip commit.
        rec = JournalRecord(op=J_ADD, parent_ino=1, name="f", ino=3)
        dev.write(j.base + 64, rec.pack())
        dev.persist(j.base + 64, 64)
        dev.crash()
        dev.recover_view()
        assert not j.committed

    def test_double_stage_rejected(self):
        j, dev = self.make()
        j.stage([JournalRecord(op=J_ADD, parent_ino=1, name="a", ino=2)])
        with pytest.raises(RuntimeError):
            j.stage([JournalRecord(op=J_ADD, parent_ino=1, name="b", ino=3)])

    def test_empty_and_oversize_rejected(self):
        j, dev = self.make()
        with pytest.raises(ValueError):
            j.stage([])
        too_many = [JournalRecord(op=J_ADD, parent_ino=1, name=f"n{i}",
                                  ino=i + 2) for i in range(100)]
        with pytest.raises(ValueError):
            j.stage(too_many)
