"""Unit tests for geometry planning and the superblock."""

import pytest

from repro.nova.layout import PAGE_SIZE, Geometry, Superblock
from repro.pm import DRAM, PMDevice, SimClock


def make_dev(pages=256):
    return PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())


class TestGeometry:
    def test_plain_layout_has_no_fact(self):
        geo = Geometry.compute(1024, max_inodes=128)
        assert geo.fact_page == 0
        assert geo.fact_entries == 0
        assert geo.data_start_page < 1024
        assert geo.data_pages > 900

    def test_dedup_layout_sizes_fact_by_paper_rule(self):
        """n = ceil(log2(total pages)); FACT has 2^(n+1) entries."""
        geo = Geometry.compute(1024, with_dedup=True)
        assert geo.fact_prefix_bits == 10
        assert geo.fact_entries == 2 ** 11
        assert geo.fact_bytes == 2 ** 11 * 64
        assert geo.data_start_page > geo.fact_page

    def test_fact_covers_block_addresses(self):
        """Delete pointers index the DAA by block address (§IV-C), so the
        DAA must have at least one slot per device page."""
        for pages in (100, 1000, 5000):
            geo = Geometry.compute(pages, with_dedup=True)
            assert 2 ** geo.fact_prefix_bits >= pages

    def test_undersized_prefix_rejected(self):
        with pytest.raises(ValueError, match="delete pointers"):
            Geometry.compute(1024, with_dedup=True, fact_prefix_bits=5)

    def test_oversized_metadata_rejected(self):
        with pytest.raises(ValueError):
            Geometry.compute(20, max_inodes=4096)

    def test_tiny_device_rejected(self):
        with pytest.raises(ValueError):
            Geometry.compute(8)

    def test_fact_overhead_near_paper_3_2_percent(self):
        """§IV-C: FACT consumes ~3.2% of capacity (2 entries/block x 64 B /
        4 KB = 3.125%, paper rounds to 3.2%)."""
        geo = Geometry.compute(2 ** 14, with_dedup=True)  # 64 MB device
        overhead = geo.fact_bytes / (geo.total_pages * PAGE_SIZE)
        assert 0.028 <= overhead <= 0.036


class TestSuperblock:
    def test_format_then_load_roundtrip(self):
        dev = make_dev()
        geo = Geometry.compute(256, max_inodes=64, with_dedup=True)
        sb = Superblock(dev)
        sb.format(geo)
        assert Superblock(dev).load_geometry() == geo

    def test_load_without_format_rejected(self):
        dev = make_dev()
        with pytest.raises(ValueError, match="magic"):
            Superblock(dev).load_geometry()

    def test_format_is_crash_atomic_via_magic(self):
        """Crash before the final magic write leaves 'no filesystem'."""
        dev = make_dev()
        geo = Geometry.compute(256, max_inodes=64)
        sb = Superblock(dev)
        sb.format(geo)
        # A fresh device that crashed mid-format: emulate by zeroing magic.
        dev2 = make_dev()
        sb2 = Superblock(dev2)
        sb2.format(geo)
        dev2.write(0, bytes(8))
        dev2.persist(0, 8)
        with pytest.raises(ValueError):
            sb2.load_geometry()

    def test_clean_flag_roundtrip(self):
        dev = make_dev()
        sb = Superblock(dev)
        sb.format(Geometry.compute(256, max_inodes=64))
        assert sb.clean
        sb.set_clean(False)
        assert not sb.clean
        sb.set_clean(True)
        assert sb.clean

    def test_clean_flag_survives_crash_once_persisted(self):
        dev = make_dev()
        sb = Superblock(dev)
        sb.format(Geometry.compute(256, max_inodes=64))
        sb.set_clean(False)
        dev.crash()
        dev.recover_view()
        assert not Superblock(dev).clean

    def test_epoch_and_dwq_count(self):
        dev = make_dev()
        sb = Superblock(dev)
        sb.format(Geometry.compute(256, max_inodes=64))
        assert sb.epoch == 0
        assert sb.bump_epoch() == 1
        assert sb.epoch == 1
        sb.set_dwq_saved_count(17)
        assert sb.dwq_saved_count == 17
