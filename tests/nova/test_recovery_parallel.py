"""Per-CPU parallel replay: identical state, smaller charged latency."""

import numpy as np
import pytest

from repro.conc import fs_state_digest
from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import NovaFS, PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock

pytestmark = pytest.mark.recovery


def crashed_image(tmp_path, cls=NovaFS, nfiles=24, **mkfs_kw):
    dev = PMDevice(4096 * PAGE_SIZE, model=DRAM, clock=SimClock())
    fs = cls.mkfs(dev, max_inodes=max(64, nfiles + 8), **mkfs_kw)
    fs.mkdir("/d")
    for i in range(nfiles):
        ino = fs.create(f"/d/f{i}")
        fs.write(ino, 0, bytes([i % 251]) * (2 * PAGE_SIZE + i))
    fs.unlink("/d/f1")
    fs.rename("/d/f2", "/f2-moved")
    fs.dev.crash()
    fs.dev.recover_view()
    path = tmp_path / "crashed.img"
    fs.dev.save_image(path)
    return path


def mount_from(path, cls=NovaFS, **kw):
    dev = PMDevice.load_image(path, clock=SimClock())
    return cls.mount(dev, **kw)


def report_fields(rep):
    return (rep.clean, rep.inodes_recovered, rep.entries_replayed,
            rep.orphans_collected, rep.pages_in_use,
            rep.corrupt_entries_skipped, rep.log_pages)


class TestParallelReplayEquivalence:
    def test_worker_counts_produce_identical_report(self, tmp_path):
        path = crashed_image(tmp_path)
        fs1 = mount_from(path, recovery_workers=1)
        fs4 = mount_from(path, recovery_workers=4)
        r1, r4 = fs1.last_recovery, fs4.last_recovery
        assert report_fields(r1) == report_fields(r4)
        assert np.array_equal(r1.bitmap, r4.bitmap)
        assert r1.extra == r4.extra
        assert fs_state_digest(fs1) == fs_state_digest(fs4)
        assert fs1.allocator.free_pages == fs4.allocator.free_pages
        check_fs_invariants(fs1)
        check_fs_invariants(fs4)

    def test_dedup_flag_scan_shards_identically(self, tmp_path):
        path = crashed_image(tmp_path, cls=DeNovaFS, nfiles=16)
        fs1 = mount_from(path, cls=DeNovaFS, recovery_workers=1)
        fs4 = mount_from(path, cls=DeNovaFS, recovery_workers=4)
        q1 = [(n.ino, n.entry_addr) for n in fs1.dwq.snapshot()]
        q4 = [(n.ino, n.entry_addr) for n in fs4.dwq.snapshot()]
        assert q1 == q4
        assert (fs1.last_recovery.extra["dedup"]
                == fs4.last_recovery.extra["dedup"])
        assert fs_state_digest(fs1) == fs_state_digest(fs4)
        fs1.daemon.drain()
        fs4.daemon.drain()
        assert (fs1.space_stats()["physical_pages"]
                == fs4.space_stats()["physical_pages"])


class TestParallelReplaySpeedup:
    def test_replay_latency_scales_down_with_workers(self, tmp_path):
        path = crashed_image(tmp_path, nfiles=48)
        times = {}
        for w in (1, 2, 4):
            dev = PMDevice.load_image(path, clock=SimClock())
            t0 = dev.clock.now_ns
            fs = NovaFS.mount(dev, recovery_workers=w)
            times[w] = dev.clock.now_ns - t0
            if w > 1:
                pool = fs.last_replay_pool
                assert pool["workers"] == w
                assert pool["makespan_ns"] < pool["busy_ns"]
        assert times[4] < times[2] < times[1]

    def test_single_worker_keeps_sequential_cost(self, tmp_path):
        """workers=1 must charge exactly the sequential replay time."""
        path = crashed_image(tmp_path, nfiles=12)
        dev_a = PMDevice.load_image(path, clock=SimClock())
        NovaFS.mount(dev_a, recovery_workers=1)
        dev_b = PMDevice.load_image(path, clock=SimClock())
        NovaFS.mount(dev_b, recovery_workers=1)
        assert dev_a.clock.now_ns == dev_b.clock.now_ns
