"""Tests for the tree-walk and dedup-aware usage utilities."""

import pytest

from repro.dedup import DeNovaFS
from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.fs import NotADirectory
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(cls=NovaFS, pages=1024):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return cls.mkfs(dev, max_inodes=128)


def build_tree(fs):
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    fs.mkdir("/c")
    for path, size in (("/top", 100), ("/a/f1", PAGE_SIZE),
                       ("/a/b/f2", 2 * PAGE_SIZE), ("/c/f3", 10)):
        ino = fs.create(path)
        fs.write(ino, 0, b"\x42" * size)
    fs.symlink("/top", "/a/link")


class TestWalk:
    def test_walk_visits_everything_in_order(self):
        fs = make_fs()
        build_tree(fs)
        visited = list(fs.walk("/"))
        dirpaths = [d for d, _, _ in visited]
        assert dirpaths == ["/", "/a", "/a/b", "/c"]
        root = visited[0]
        assert root[1] == ["a", "c"]
        assert root[2] == ["top"]
        a = visited[1]
        assert a[1] == ["b"]
        assert a[2] == ["f1", "link"]  # symlink listed, not followed

    def test_walk_subtree(self):
        fs = make_fs()
        build_tree(fs)
        assert [d for d, _, _ in fs.walk("/a")] == ["/a", "/a/b"]

    def test_walk_non_directory(self):
        fs = make_fs()
        fs.create("/f")
        with pytest.raises(NotADirectory):
            list(fs.walk("/f"))


class TestDu:
    def test_du_counts_logical_and_physical(self):
        fs = make_fs()
        build_tree(fs)
        rep = fs.du("/")
        assert rep["files"] == 4
        assert rep["dirs"] == 3
        assert rep["logical_bytes"] == 100 + PAGE_SIZE + 2 * PAGE_SIZE + 10
        assert rep["unique_pages"] == 5

    def test_du_is_dedup_aware(self):
        fs = make_fs(cls=DeNovaFS, pages=2048)
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, b"\x07" * (3 * PAGE_SIZE))
        fs.write(b, 0, b"\x07" * (3 * PAGE_SIZE))
        fs.daemon.drain()
        rep = fs.du("/")
        assert rep["logical_bytes"] == 6 * PAGE_SIZE
        assert rep["unique_pages"] == 1  # identical pages, shared
        assert rep["physical_bytes"] == PAGE_SIZE

    def test_du_subtree_shared_with_outside(self):
        """Pages shared across the subtree boundary still count once
        inside (du reports what the subtree pins)."""
        fs = make_fs(cls=DeNovaFS, pages=2048)
        fs.mkdir("/d")
        x = fs.create("/outside")
        y = fs.create("/d/inside")
        fs.write(x, 0, b"\x09" * PAGE_SIZE)
        fs.write(y, 0, b"\x09" * PAGE_SIZE)
        fs.daemon.drain()
        rep = fs.du("/d")
        assert rep["files"] == 1
        assert rep["unique_pages"] == 1
