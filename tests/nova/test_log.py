"""Unit tests for inode log append / walk / commit semantics."""

import pytest

from repro.nova.entries import ENTRY_SIZE, WriteEntry
from repro.nova.inode import Inode, InodeTable
from repro.nova.layout import PAGE_SIZE, Geometry, Superblock
from repro.nova.log import ENTRIES_PER_PAGE, LOG_HEADER_SIZE, LogManager
from repro.pm import DRAM, PageAllocator, PMDevice, SimClock


@pytest.fixture
def env():
    dev = PMDevice(512 * PAGE_SIZE, model=DRAM, clock=SimClock())
    geo = Geometry.compute(512, max_inodes=64)
    Superblock(dev).format(geo)
    itable = InodeTable(dev, geo)
    alloc = PageAllocator(geo.data_start_page, geo.total_pages)
    log = LogManager(dev, alloc, itable)
    itable.write(2, Inode(ino=2, valid=1))
    return dev, itable, alloc, log


def entry_bytes(i):
    return WriteEntry(file_pgoff=i, num_pages=1, block=100 + i,
                      size_after=(i + 1) * PAGE_SIZE, ino=2).pack()


class TestAppend:
    def test_first_append_creates_log(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        assert head != 0
        assert tail == head * PAGE_SIZE + LOG_HEADER_SIZE
        itable.update_log_head(2, head)
        addr, new_tail = log.append(2, tail, entry_bytes(0), cpu=0)
        assert addr == tail
        assert new_tail == addr + ENTRY_SIZE
        log.commit(2, new_tail)
        assert itable.read(2).log_tail == new_tail

    def test_ensure_log_idempotent_when_head_exists(self, env):
        dev, itable, alloc, log = env
        head, _ = log.ensure_log(2, 0, cpu=0)
        head2, tail2 = log.ensure_log(2, head, cpu=0)
        assert head2 == head
        assert tail2 == 0

    def test_page_overflow_links_new_page(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        itable.update_log_head(2, head)
        for i in range(ENTRIES_PER_PAGE + 1):
            _, tail = log.append(2, tail, entry_bytes(i), cpu=0)
        log.commit(2, tail)
        pages = list(log.iter_pages(head))
        assert len(pages) == 2
        assert log.next_of(pages[0]) == pages[1]
        slots = list(log.iter_slots(head, tail))
        assert len(slots) == ENTRIES_PER_PAGE + 1

    def test_entries_per_page_is_63(self):
        assert ENTRIES_PER_PAGE == 63

    def test_wrong_entry_size_rejected(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        with pytest.raises(ValueError):
            log.append(2, tail, b"short", cpu=0)


class TestWalk:
    def test_iter_slots_empty_log(self, env):
        _, _, _, log = env
        assert list(log.iter_slots(0, 0)) == []

    def test_iter_slots_respects_tail(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        itable.update_log_head(2, head)
        tails = []
        for i in range(5):
            _, tail = log.append(2, tail, entry_bytes(i), cpu=0)
            tails.append(tail)
        # Commit only the first three: recovery must not see 4 and 5.
        log.commit(2, tails[2])
        slots = list(log.iter_slots(head, tails[2]))
        assert len(slots) == 3
        got = [WriteEntry.unpack(raw).file_pgoff for _a, raw in slots]
        assert got == [0, 1, 2]

    def test_iter_slots_across_many_pages(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        itable.update_log_head(2, head)
        n = 3 * ENTRIES_PER_PAGE + 7
        for i in range(n):
            _, tail = log.append(2, tail, entry_bytes(i), cpu=0)
        log.commit(2, tail)
        slots = list(log.iter_slots(head, tail))
        assert len(slots) == n
        assert [WriteEntry.unpack(r).file_pgoff for _a, r in slots] == \
            list(range(n))

    def test_iter_pages_detects_cycle(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        for i in range(ENTRIES_PER_PAGE + 1):
            _, tail = log.append(2, tail, entry_bytes(i), cpu=0)
        pages = list(log.iter_pages(head))
        # Corrupt: second page points back at the first.
        dev.write_atomic64(pages[1] * PAGE_SIZE, pages[0])
        with pytest.raises(RuntimeError, match="cycle"):
            list(log.iter_pages(head))


class TestCrashSemantics:
    def test_uncommitted_entry_invisible_after_crash(self, env):
        """Fig. 1 atomicity: crash before the tail update hides the entry."""
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        itable.update_log_head(2, head)
        _, t1 = log.append(2, tail, entry_bytes(0), cpu=0)
        log.commit(2, t1)
        _, t2 = log.append(2, t1, entry_bytes(1), cpu=0)
        # Crash before commit of entry 1.
        dev.crash()
        dev.recover_view()
        inode = itable.read(2)
        assert inode.log_tail == t1
        slots = list(log.iter_slots(inode.log_head, inode.log_tail))
        assert len(slots) == 1

    def test_committed_entry_survives_crash(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        itable.update_log_head(2, head)
        _, t1 = log.append(2, tail, entry_bytes(0), cpu=0)
        log.commit(2, t1)
        dev.crash()
        dev.recover_view()
        inode = itable.read(2)
        slots = list(log.iter_slots(inode.log_head, inode.log_tail))
        assert len(slots) == 1
        assert WriteEntry.unpack(slots[0][1]).block == 100

    def test_half_linked_extra_page_is_harmless(self, env):
        """Crash after linking a fresh log page but before any commit into
        it: the chain grows but recovery sees only committed entries."""
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        itable.update_log_head(2, head)
        for i in range(ENTRIES_PER_PAGE):
            _, tail = log.append(2, tail, entry_bytes(i), cpu=0)
        log.commit(2, tail)
        # This append allocates + links page 2 and stages the entry...
        log.append(2, tail, entry_bytes(99), cpu=0)
        dev.crash()  # ...but we crash before commit.
        dev.recover_view()
        inode = itable.read(2)
        slots = list(log.iter_slots(inode.log_head, inode.log_tail))
        assert len(slots) == ENTRIES_PER_PAGE
        # The chain may or may not contain the extra page; either way the
        # walk terminates and every committed entry decodes.
        pages = list(log.iter_pages(inode.log_head))
        assert pages[0] == head


class TestGC:
    def test_unlink_middle_page_splices_chain(self, env):
        dev, itable, alloc, log = env
        head, tail = log.ensure_log(2, 0, cpu=0)
        itable.update_log_head(2, head)
        for i in range(2 * ENTRIES_PER_PAGE + 1):
            _, tail = log.append(2, tail, entry_bytes(i), cpu=0)
        log.commit(2, tail)
        pages = list(log.iter_pages(head))
        assert len(pages) == 3
        dead = log.unlink_middle_page(pages[0], pages[1])
        assert dead == pages[1]
        assert list(log.iter_pages(head)) == [pages[0], pages[2]]
