"""Unit tests for 64-byte log entry packing."""

import pytest

from repro.nova.entries import (
    DEDUPE_IN_PROCESS,
    ENTRY_SIZE,
    DentryEntry,
    SetattrEntry,
    WriteEntry,
    decode_entry,
)


class TestWriteEntry:
    def test_roundtrip(self):
        e = WriteEntry(file_pgoff=7, num_pages=3, block=1000,
                       size_after=40960, ino=5, mtime=123456,
                       dedupe_flag=DEDUPE_IN_PROCESS, flags=2)
        raw = e.pack()
        assert len(raw) == ENTRY_SIZE
        back = WriteEntry.unpack(raw)
        assert back == e

    def test_pages_and_block_for(self):
        e = WriteEntry(file_pgoff=10, num_pages=4, block=500,
                       size_after=0, ino=1)
        assert list(e.pages()) == [500, 501, 502, 503]
        assert e.block_for(10) == 500
        assert e.block_for(13) == 503
        with pytest.raises(ValueError):
            e.block_for(14)
        with pytest.raises(ValueError):
            e.block_for(9)

    def test_unpack_wrong_type_rejected(self):
        raw = SetattrEntry(ino=1, new_size=0).pack()
        with pytest.raises(ValueError):
            WriteEntry.unpack(raw)


class TestDentryEntry:
    def test_roundtrip(self):
        e = DentryEntry(name="file_042.dat", ino=9, valid=1, mtime=77)
        back = DentryEntry.unpack(e.pack())
        assert back == e

    def test_removal_record(self):
        e = DentryEntry(name="gone", ino=4, valid=0)
        assert DentryEntry.unpack(e.pack()).valid == 0

    def test_max_name_length(self):
        DentryEntry(name="x" * 40, ino=1).pack()
        with pytest.raises(ValueError):
            DentryEntry(name="x" * 41, ino=1).pack()
        with pytest.raises(ValueError):
            DentryEntry(name="", ino=1).pack()

    def test_utf8_names(self):
        e = DentryEntry(name="données", ino=2)
        assert DentryEntry.unpack(e.pack()).name == "données"


class TestSetattrEntry:
    def test_roundtrip(self):
        e = SetattrEntry(ino=3, new_size=123456789, mtime=42)
        assert SetattrEntry.unpack(e.pack()) == e


class TestDecode:
    def test_decode_dispatches_by_type(self):
        w = WriteEntry(file_pgoff=0, num_pages=1, block=9, size_after=4096,
                       ino=2)
        d = DentryEntry(name="a", ino=3)
        s = SetattrEntry(ino=4, new_size=0)
        assert isinstance(decode_entry(w.pack()), WriteEntry)
        assert isinstance(decode_entry(d.pack()), DentryEntry)
        assert isinstance(decode_entry(s.pack()), SetattrEntry)

    def test_decode_empty_slot_is_none(self):
        assert decode_entry(bytes(ENTRY_SIZE)) is None

    def test_decode_unknown_type_raises(self):
        raw = bytes([200]) + bytes(ENTRY_SIZE - 1)
        with pytest.raises(ValueError):
            decode_entry(raw)

    def test_decode_wrong_size_raises(self):
        with pytest.raises(ValueError):
            decode_entry(b"short")

    def test_all_entries_are_one_cache_line(self):
        """§IV-C: one entry == one cache line == one flush."""
        assert ENTRY_SIZE == 64
