"""Integration-level tests of NovaFS behaviour (no dedup)."""

import pytest

from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.fs import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FSError,
    IsADirectory,
    NoSpace,
    NotADirectory,
)
from repro.nova.inode import ITYPE_DIR, ITYPE_FILE, ROOT_INO
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(pages=512, **kw):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return NovaFS.mkfs(dev, max_inodes=kw.pop("max_inodes", 128), **kw)


class TestNamespace:
    def test_create_and_lookup(self):
        fs = make_fs()
        ino = fs.create("/a.txt")
        assert fs.lookup("/a.txt") == ino
        assert fs.exists("/a.txt")
        assert not fs.exists("/b.txt")

    def test_root_lookup(self):
        fs = make_fs()
        assert fs.lookup("/") == ROOT_INO

    def test_create_duplicate_rejected(self):
        fs = make_fs()
        fs.create("/a")
        with pytest.raises(FileExists):
            fs.create("/a")

    def test_nested_directories(self):
        fs = make_fs()
        fs.mkdir("/d1")
        fs.mkdir("/d1/d2")
        ino = fs.create("/d1/d2/leaf")
        assert fs.lookup("/d1/d2/leaf") == ino
        assert fs.listdir("/d1") == ["d2"]
        assert fs.listdir("/d1/d2") == ["leaf"]

    def test_lookup_through_file_rejected(self):
        fs = make_fs()
        fs.create("/f")
        with pytest.raises(NotADirectory):
            fs.create("/f/child")

    def test_missing_intermediate_dir(self):
        fs = make_fs()
        with pytest.raises(FileNotFound):
            fs.create("/nope/f")

    def test_unlink_removes_file(self):
        fs = make_fs()
        fs.create("/a")
        fs.unlink("/a")
        assert not fs.exists("/a")
        with pytest.raises(FileNotFound):
            fs.unlink("/a")

    def test_unlink_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.unlink("/d")

    def test_rmdir_empty_only(self):
        fs = make_fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d")
        fs.unlink("/d/f")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rmdir_on_file_rejected(self):
        fs = make_fs()
        fs.create("/f")
        with pytest.raises(NotADirectory):
            fs.rmdir("/f")

    def test_name_reuse_after_unlink(self):
        fs = make_fs()
        ino1 = fs.create("/a")
        fs.write(ino1, 0, b"one")
        fs.unlink("/a")
        ino2 = fs.create("/a")
        assert fs.read(ino2, 0, 10) == b""

    def test_unlink_frees_pages(self):
        fs = make_fs()
        fs.create("/warm")
        fs.unlink("/warm")  # leaves the root dir log allocated
        free0 = fs.allocator.free_pages
        ino = fs.create("/big")
        fs.write(ino, 0, b"z" * (8 * PAGE_SIZE))
        assert fs.allocator.free_pages < free0
        fs.unlink("/big")
        assert fs.allocator.free_pages == free0


class TestDataPath:
    def test_write_read_roundtrip(self):
        fs = make_fs()
        ino = fs.create("/f")
        data = bytes(range(256)) * 40
        assert fs.write(ino, 0, data) == len(data)
        assert fs.read(ino, 0, len(data)) == data

    def test_read_past_eof_short(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"hello")
        assert fs.read(ino, 0, 100) == b"hello"
        assert fs.read(ino, 5, 10) == b""
        assert fs.read(ino, 100, 10) == b""

    def test_sparse_hole_reads_zeros(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 3 * PAGE_SIZE, b"tail")
        assert fs.stat(ino).size == 3 * PAGE_SIZE + 4
        assert fs.read(ino, 0, PAGE_SIZE) == bytes(PAGE_SIZE)
        assert fs.read(ino, 3 * PAGE_SIZE, 4) == b"tail"

    def test_unaligned_overwrite_preserves_neighbours(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"A" * (2 * PAGE_SIZE))
        fs.write(ino, 100, b"B" * 50)
        got = fs.read(ino, 0, 2 * PAGE_SIZE)
        assert got[:100] == b"A" * 100
        assert got[100:150] == b"B" * 50
        assert got[150:] == b"A" * (2 * PAGE_SIZE - 150)

    def test_overwrite_spanning_pages_fig1(self):
        """The Fig. 1 scenario: overwrite across pages 2 and 3."""
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"x" * (4 * PAGE_SIZE))
        fs.write(ino, 2 * PAGE_SIZE + 17, b"y" * PAGE_SIZE)
        got = fs.read(ino, 0, 4 * PAGE_SIZE)
        assert got[:2 * PAGE_SIZE + 17] == b"x" * (2 * PAGE_SIZE + 17)
        assert got[2 * PAGE_SIZE + 17:3 * PAGE_SIZE + 17] == b"y" * PAGE_SIZE
        assert got[3 * PAGE_SIZE + 17:] == b"x" * (PAGE_SIZE - 17)

    def test_cow_reclaims_fully_overwritten_pages(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"a" * (4 * PAGE_SIZE))
        used = fs.statfs()["used_pages"]
        fs.write(ino, 0, b"b" * (4 * PAGE_SIZE))
        # CoW allocates 4 new pages and frees the 4 old ones (+ maybe log).
        assert fs.statfs()["used_pages"] <= used + 1
        assert fs.counters["pages_reclaimed"] >= 4

    def test_empty_write_is_noop(self):
        fs = make_fs()
        ino = fs.create("/f")
        assert fs.write(ino, 0, b"") == 0
        assert fs.stat(ino).size == 0

    def test_negative_offset_rejected(self):
        fs = make_fs()
        ino = fs.create("/f")
        with pytest.raises(ValueError):
            fs.write(ino, -1, b"x")
        with pytest.raises(ValueError):
            fs.read(ino, -1, 5)

    def test_write_to_directory_rejected(self):
        fs = make_fs()
        fs.mkdir("/d")
        ino = fs.lookup("/d")
        with pytest.raises(IsADirectory):
            fs.write(ino, 0, b"x")

    def test_write_unknown_ino_rejected(self):
        fs = make_fs()
        with pytest.raises(FileNotFound):
            fs.write(999, 0, b"x")

    def test_enospc(self):
        fs = make_fs(pages=64, max_inodes=16)
        ino = fs.create("/f")
        with pytest.raises(NoSpace):
            fs.write(ino, 0, b"x" * (200 * PAGE_SIZE))

    def test_many_small_files(self):
        fs = make_fs(pages=2048, max_inodes=512)
        for i in range(300):
            ino = fs.create(f"/f{i:03d}")
            fs.write(ino, 0, bytes([i % 256]) * 100)
        for i in range(300):
            ino = fs.lookup(f"/f{i:03d}")
            assert fs.read(ino, 0, 100) == bytes([i % 256]) * 100


class TestTruncate:
    def test_truncate_shrink_frees_pages(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"q" * (6 * PAGE_SIZE))
        used = fs.statfs()["used_pages"]
        fs.truncate(ino, PAGE_SIZE)
        assert fs.stat(ino).size == PAGE_SIZE
        assert fs.statfs()["used_pages"] < used
        assert fs.read(ino, 0, 10 * PAGE_SIZE) == b"q" * PAGE_SIZE

    def test_truncate_grow_extends_with_zeros(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"data")
        fs.truncate(ino, PAGE_SIZE + 5)
        got = fs.read(ino, 0, PAGE_SIZE + 5)
        assert got[:4] == b"data"
        assert got[4:] == bytes(PAGE_SIZE + 1)

    def test_truncate_partial_page_keeps_page(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"w" * (2 * PAGE_SIZE))
        fs.truncate(ino, PAGE_SIZE // 2)
        assert fs.read(ino, 0, PAGE_SIZE) == b"w" * (PAGE_SIZE // 2)


class TestStat:
    def test_stat_fields(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"12345")
        st = fs.stat(ino)
        assert st.ino == ino
        assert st.size == 5
        assert st.itype == ITYPE_FILE
        st_root = fs.stat(ROOT_INO)
        assert st_root.itype == ITYPE_DIR

    def test_statfs_accounting(self):
        fs = make_fs()
        s = fs.statfs()
        assert s["free_pages"] + s["used_pages"] == s["data_pages"]

    def test_fsync_noop(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.fsync(ino)  # must not raise


class TestMountCycle:
    def test_unmounted_fs_rejects_ops(self):
        fs = make_fs()
        fs.unmount()
        with pytest.raises(FSError):
            fs.create("/x")

    def test_clean_remount_preserves_everything(self):
        fs = make_fs()
        fs.mkdir("/d")
        ino = fs.create("/d/f")
        data = b"persistent data " * 300
        fs.write(ino, 0, data)
        fs.unmount()
        fs2 = NovaFS.mount(fs.dev)
        ino2 = fs2.lookup("/d/f")
        assert fs2.read(ino2, 0, len(data)) == data
        assert fs2.stat(ino2).size == len(data)

    def test_log_gc_reclaims_dead_pages(self):
        fs = make_fs(pages=1024)
        ino = fs.create("/f")
        # Rewrite the same page enough to fill several log pages with
        # fully-superseded entries.
        for i in range(200):
            fs.write(ino, 0, bytes([i % 256]) * PAGE_SIZE)
        assert fs.counters["log_pages_gced"] >= 1
        assert fs.read(ino, 0, PAGE_SIZE) == bytes([199 % 256]) * PAGE_SIZE
