"""Crash-recovery tests for plain NOVA: every persistence event."""

import pytest

from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import NovaFS, PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock


def fresh_fs(pages=512):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return NovaFS.mkfs(dev, max_inodes=64)


class TestBasicRecovery:
    def test_unclean_mount_recovers_committed_writes(self):
        fs = fresh_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"committed" * 100)
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        assert not fs2.last_recovery.clean
        ino2 = fs2.lookup("/f")
        assert fs2.read(ino2, 0, 900) == b"committed" * 100

    def test_recovery_report_counts(self):
        fs = fresh_fs()
        for i in range(5):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, b"x" * PAGE_SIZE)
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        rep = fs2.last_recovery
        assert rep.inodes_recovered == 6  # root + 5 files
        assert rep.entries_replayed >= 10  # 5 dentries + 5 writes
        assert rep.orphans_collected == 0
        assert rep.pages_in_use >= 6

    def test_write_atomicity_old_or_new(self):
        """Crash during an overwrite: the file reads all-old or all-new."""
        def build():
            fs = fresh_fs()
            ino = fs.create("/f")
            fs.write(ino, 0, b"A" * (2 * PAGE_SIZE))

            def scenario():
                fs.write(ino, 0, b"B" * (2 * PAGE_SIZE))

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            ino2 = fs2.lookup("/f")
            got = fs2.read(ino2, 0, 2 * PAGE_SIZE)
            assert got in (b"A" * (2 * PAGE_SIZE), b"B" * (2 * PAGE_SIZE)), \
                "torn overwrite visible"
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) > 0

    def test_create_atomicity(self):
        """Crash during create: file fully exists or not at all; no orphan
        inode survives recovery."""
        def build():
            fs = fresh_fs()

            def scenario():
                fs.create("/newfile")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            if fs2.exists("/newfile"):
                assert fs2.stat(fs2.lookup("/newfile")).size == 0
            check_fs_invariants(fs2)
            # Orphans were collected, so every valid inode is reachable.
            assert fs2.last_recovery.orphans_collected in (0, 1)

        assert sweep_crash_points(build, check) > 0

    def test_unlink_atomicity(self):
        def build():
            fs = fresh_fs()
            ino = fs.create("/doomed")
            fs.write(ino, 0, b"payload" * 1000)

            def scenario():
                fs.unlink("/doomed")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            if fs2.exists("/doomed"):
                ino2 = fs2.lookup("/doomed")
                assert fs2.read(ino2, 0, 7000) == b"payload" * 1000
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) > 0

    def test_truncate_atomicity(self):
        def build():
            fs = fresh_fs()
            ino = fs.create("/t")
            fs.write(ino, 0, b"z" * (4 * PAGE_SIZE))

            def scenario():
                fs.truncate(ino, PAGE_SIZE)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            ino2 = fs2.lookup("/t")
            size = fs2.stat(ino2).size
            assert size in (PAGE_SIZE, 4 * PAGE_SIZE)
            assert fs2.read(ino2, 0, size) == b"z" * size
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) > 0


class TestTornCrashes:
    def test_overwrite_survives_torn_crashes(self):
        """Word-granularity adversarial persistence: atomicity must hold
        because commits ride on single 8-byte tail stores."""
        def build():
            fs = fresh_fs()
            ino = fs.create("/f")
            fs.write(ino, 0, b"1" * PAGE_SIZE)

            def scenario():
                fs.write(ino, 0, b"2" * PAGE_SIZE)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            ino2 = fs2.lookup("/f")
            got = fs2.read(ino2, 0, PAGE_SIZE)
            assert got in (b"1" * PAGE_SIZE, b"2" * PAGE_SIZE)
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check, mode="torn") > 0


class TestMultiFileRecovery:
    def test_interleaved_workload_crash_sweep_subsampled(self):
        def build():
            fs = fresh_fs(pages=1024)

            def scenario():
                fs.mkdir("/d")
                for i in range(6):
                    ino = fs.create(f"/d/f{i}")
                    fs.write(ino, 0, bytes([i]) * (PAGE_SIZE + 17))
                fs.unlink("/d/f2")
                ino = fs.lookup("/d/f3")
                fs.write(ino, PAGE_SIZE, b"tail part")
                fs.truncate(fs.lookup("/d/f4"), 5)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            check_fs_invariants(fs2)
            # Any file that exists must read back self-consistent content.
            for i in range(6):
                path = f"/d/f{i}"
                if not fs2.exists(path):
                    continue
                ino = fs2.lookup(path)
                st = fs2.stat(ino)
                data = fs2.read(ino, 0, st.size)
                assert len(data) == st.size
                if st.size >= PAGE_SIZE and i != 3:
                    assert data[:PAGE_SIZE] == bytes([i]) * PAGE_SIZE

        assert sweep_crash_points(build, check, stride=5) > 5

    def test_remount_after_recovery_is_stable(self):
        """Recover, write more, recover again — state stays consistent."""
        fs = fresh_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"first")
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        ino2 = fs2.lookup("/f")
        fs2.write(ino2, 0, b"second!")
        fs2.dev.crash()
        fs2.dev.recover_view()
        fs3 = NovaFS.mount(fs2.dev)
        assert fs3.read(fs3.lookup("/f"), 0, 10) == b"second!"
        check_fs_invariants(fs3)
