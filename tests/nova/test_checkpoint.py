"""Clean-unmount checkpoint: fast remount, torn/stale fallback."""

import struct

import pytest

from repro.conc import fs_state_digest
from repro.failure import check_fs_invariants
from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.checkpoint import _HDR_BYTES, _PAYLOAD_OFF, load_checkpoint
from repro.nova.layout import Superblock
from repro.pm import DRAM, PMDevice, SimClock

pytestmark = pytest.mark.recovery


def build_fs(pages=1024, inodes=64, cpus=1):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    fs = NovaFS.mkfs(dev, max_inodes=inodes, cpus=cpus)
    fs.mkdir("/d")
    fs.mkdir("/d/e")
    for i in range(8):
        ino = fs.create(f"/d/f{i}")
        fs.write(ino, 0, bytes([65 + i]) * (PAGE_SIZE + 100))
    fs.symlink("/d/f0", "/link")
    fs.unlink("/d/f7")
    return fs


def remount(fs, tmp_path, name, **kw):
    """Unplug-free remount: round-trip through a durable image copy."""
    path = tmp_path / f"{name}.img"
    fs.dev.save_image(path)
    dev = PMDevice.load_image(path, clock=SimClock())
    return NovaFS.mount(dev, **kw)


class TestCheckpointFastPath:
    def test_clean_remount_restores_from_checkpoint(self, tmp_path):
        fs = build_fs()
        digest0 = fs_state_digest(fs)
        fs.unmount()
        fs2 = remount(fs, tmp_path, "ck")
        rep = fs2.last_recovery
        assert rep.clean
        assert "checkpoint" in rep.extra
        assert rep.entries_replayed == 0  # not one log page read
        assert fs_state_digest(fs2) == digest0
        check_fs_invariants(fs2)

    def test_checkpoint_matches_full_scan_accounting(self, tmp_path):
        fs = build_fs(cpus=2)
        fs.unmount()
        ck = remount(fs, tmp_path, "a", cpus=2)
        full = remount(fs, tmp_path, "b", cpus=2, use_checkpoint=False)
        assert "checkpoint" not in full.last_recovery.extra
        assert (ck.last_recovery.pages_in_use
                == full.last_recovery.pages_in_use)
        assert ck.allocator.free_pages == full.allocator.free_pages
        assert fs_state_digest(ck) == fs_state_digest(full)

    def test_hydration_is_lazy_and_on_demand(self, tmp_path):
        fs = build_fs()
        ino = fs.lookup("/d/f3")
        fs.unmount()
        fs2 = remount(fs, tmp_path, "lazy")
        stubs = [c for _, c in fs2.caches.raw_items() if not c.hydrated]
        assert stubs, "checkpoint mount should start from stub caches"
        assert not fs2.caches.raw_get(ino).hydrated
        assert fs2.read(ino, 0, PAGE_SIZE) == b"D" * PAGE_SIZE
        assert fs2.caches.raw_get(ino).hydrated
        assert fs2._hydrations >= 1

    def test_checkpoint_region_reserved_and_reported(self):
        fs = build_fs()
        assert fs.geo.ckpt_pages > 0
        assert fs.geo.ckpt_page > 0

    def test_tiny_device_has_no_checkpoint_region(self, tmp_path):
        dev = PMDevice(16 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = NovaFS.mkfs(dev, max_inodes=64)
        assert fs.geo.ckpt_pages == 0
        ino = fs.create("/f")
        fs.write(ino, 0, b"x" * 10)
        fs.unmount()
        fs2 = remount(fs, tmp_path, "tiny")
        assert "checkpoint" not in fs2.last_recovery.extra
        assert fs2.read(fs2.lookup("/f"), 0, 10) == b"x" * 10


class TestCheckpointFallback:
    def _corrupt(self, fs, offset):
        addr = fs.geo.ckpt_page * PAGE_SIZE + offset
        byte = fs.dev.read_silent(addr, 1)
        fs.dev.write(addr, bytes([byte[0] ^ 0xFF]))
        fs.dev.persist(addr, 1)

    def test_torn_header_falls_back_to_full_scan(self, tmp_path):
        fs = build_fs()
        digest0 = fs_state_digest(fs)
        fs.unmount()
        self._corrupt(fs, _HDR_BYTES - 1)  # last CRC byte
        fs2 = remount(fs, tmp_path, "hdr")
        rep = fs2.last_recovery
        assert rep.clean
        assert "checkpoint" not in rep.extra
        assert rep.entries_replayed > 0
        assert fs_state_digest(fs2) == digest0
        check_fs_invariants(fs2)

    def test_torn_payload_falls_back_to_full_scan(self, tmp_path):
        fs = build_fs()
        digest0 = fs_state_digest(fs)
        fs.unmount()
        self._corrupt(fs, _PAYLOAD_OFF + 10)
        fs2 = remount(fs, tmp_path, "payload")
        assert "checkpoint" not in fs2.last_recovery.extra
        assert fs_state_digest(fs2) == digest0

    def test_stale_generation_is_ignored(self, tmp_path):
        fs = build_fs()
        digest0 = fs_state_digest(fs)
        fs.unmount()
        # A later mount bumped the epoch; the old checkpoint must not
        # be replayed against newer on-device state.
        Superblock(fs.dev).bump_epoch()
        fs2 = remount(fs, tmp_path, "stale")
        assert "checkpoint" not in fs2.last_recovery.extra
        assert fs_state_digest(fs2) == digest0

    def test_checkpoint_never_replayed_twice(self, tmp_path):
        fs = build_fs()
        fs.unmount()
        fs2 = remount(fs, tmp_path, "once")
        assert "checkpoint" in fs2.last_recovery.extra
        ino = fs2.create("/after")
        fs2.write(ino, 0, b"post-checkpoint")
        fs2.dev.crash()
        fs2.dev.recover_view()
        fs3 = NovaFS.mount(fs2.dev)
        rep = fs3.last_recovery
        assert not rep.clean
        assert "checkpoint" not in rep.extra
        assert fs3.read(fs3.lookup("/after"), 0, 15) == b"post-checkpoint"
        check_fs_invariants(fs3)

    def test_use_checkpoint_false_forces_scan(self, tmp_path):
        fs = build_fs()
        fs.unmount()
        fs2 = remount(fs, tmp_path, "forced", use_checkpoint=False)
        assert "checkpoint" not in fs2.last_recovery.extra
        assert fs2.last_recovery.entries_replayed > 0

    def test_load_checkpoint_rejects_bad_magic(self, tmp_path):
        fs = build_fs()
        fs.unmount()
        addr = fs.geo.ckpt_page * PAGE_SIZE
        fs.dev.write(addr, struct.pack("<Q", 0xBAD))
        fs.dev.persist(addr, 8)
        path = tmp_path / "magic.img"
        fs.dev.save_image(path)
        dev = PMDevice.load_image(path, clock=SimClock())
        geo = Superblock(dev).load_geometry()
        probe = NovaFS(dev, geo, 1)
        assert load_checkpoint(probe) is None
