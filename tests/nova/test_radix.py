"""Unit tests for the DRAM file index (radix tree model)."""

import pytest

from repro.nova.entries import WriteEntry
from repro.nova.radix import FileIndex, _group
from repro.pm import SimClock
from repro.pm.latency import CpuModel


def idx():
    return FileIndex(CpuModel(), SimClock())


def we(pgoff, npages, block, ino=1):
    return WriteEntry(file_pgoff=pgoff, num_pages=npages, block=block,
                      size_after=(pgoff + npages) * 4096, ino=ino)


class TestInstall:
    def test_fresh_install_displaces_nothing(self):
        ix = idx()
        d = ix.install(0x1000, we(0, 3, 100))
        assert d.extents == []
        assert d.dead_entries == []
        assert ix.block_of(0) == 100
        assert ix.block_of(2) == 102
        assert ix.block_of(3) is None

    def test_full_overwrite_displaces_old_pages_and_entry(self):
        ix = idx()
        ix.install(0x1000, we(0, 3, 100))
        d = ix.install(0x2000, we(0, 3, 200))
        assert d.extents == [(100, 3)]
        assert d.dead_entries == [0x1000]
        assert ix.block_of(1) == 201

    def test_partial_overwrite_keeps_entry_alive(self):
        ix = idx()
        ix.install(0x1000, we(0, 4, 100))
        d = ix.install(0x2000, we(1, 2, 200))
        assert d.extents == [(101, 2)]
        assert d.dead_entries == []
        assert ix.entry_live_pages(0x1000) == 2
        assert ix.block_of(0) == 100
        assert ix.block_of(1) == 200
        assert ix.block_of(3) == 103

    def test_noncontiguous_displacement_groups_extents(self):
        ix = idx()
        ix.install(0x1000, we(0, 1, 100))
        ix.install(0x1100, we(1, 1, 500))
        ix.install(0x1200, we(2, 1, 101))
        d = ix.install(0x2000, we(0, 3, 200))
        assert d.extents == [(100, 2), (500, 1)]
        assert sorted(d.dead_entries) == [0x1000, 0x1100, 0x1200]

    def test_mapped_offsets_sorted(self):
        ix = idx()
        ix.install(0x1000, we(5, 2, 100))
        ix.install(0x2000, we(0, 1, 300))
        assert ix.mapped_offsets == [0, 5, 6]
        assert len(ix) == 3

    def test_lookup_charges_dram_cost(self):
        clock = SimClock()
        ix = FileIndex(CpuModel(), clock)
        ix.install(0x1000, we(0, 1, 100))
        t = clock.now_ns
        ix.lookup(0)
        assert clock.now_ns > t


class TestRedirect:
    def test_redirect_single_page(self):
        ix = idx()
        ix.install(0x1000, we(0, 2, 100))
        d = ix.redirect(1, 0x2000, we(1, 1, 999))
        assert d.extents == [(101, 1)]
        assert ix.block_of(1) == 999
        assert ix.block_of(0) == 100

    def test_redirect_rejects_multipage(self):
        ix = idx()
        with pytest.raises(ValueError):
            ix.redirect(0, 0x2000, we(0, 2, 999))


class TestTruncate:
    def test_truncate_drops_tail_mappings(self):
        ix = idx()
        ix.install(0x1000, we(0, 4, 100))
        d = ix.truncate_pages(2)
        assert d.extents == [(102, 2)]
        assert ix.block_of(1) == 101
        assert ix.block_of(2) is None
        assert ix.entry_live_pages(0x1000) == 2

    def test_truncate_to_zero_kills_entry(self):
        ix = idx()
        ix.install(0x1000, we(0, 2, 100))
        d = ix.truncate_pages(0)
        assert d.dead_entries == [0x1000]
        assert len(ix) == 0

    def test_clear_equals_truncate_zero(self):
        ix = idx()
        ix.install(0x1000, we(3, 2, 100))
        d = ix.clear()
        assert d.extents == [(100, 2)]
        assert len(ix) == 0


class TestReferencedPages:
    def test_referenced_pages_union(self):
        ix = idx()
        ix.install(0x1000, we(0, 2, 100))
        ix.install(0x2000, we(5, 1, 400))
        assert ix.referenced_pages() == {100, 101, 400}

    def test_shared_block_counted_once(self):
        """After dedup two file pages can point at one device page."""
        ix = idx()
        ix.install(0x1000, we(0, 1, 100))
        ix.install(0x2000, we(1, 1, 100))
        assert ix.referenced_pages() == {100}


class TestGroup:
    def test_group_empty(self):
        assert _group([]) == []

    def test_group_merges_runs(self):
        assert _group([5, 3, 4, 9, 10, 1]) == [(1, 1), (3, 3), (9, 2)]

    def test_group_preserves_multiplicity(self):
        # After dedup several slots can share one canonical block; each
        # displaced slot is one dropped reference, so the RFC-checked
        # reclaim must see the page once per slot (found by the fuzzer:
        # collapsing duplicates leaked shared FACT entries on overwrite).
        assert _group([2, 2, 3]) == [(2, 1), (2, 2)]
        assert _group([7, 7]) == [(7, 1), (7, 1)]
        assert sum(c for _, c in _group([2, 2, 3, 9, 9, 9])) == 6
