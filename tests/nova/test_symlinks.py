"""Tests for symbolic links."""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.fs import FileExists, FileNotFound, FSError
from repro.nova.inode import ITYPE_SYMLINK
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(pages=512, cls=NovaFS):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return cls.mkfs(dev, max_inodes=64)


class TestBasics:
    def test_symlink_and_readlink(self):
        fs = make_fs()
        fs.create("/real")
        fs.symlink("/real", "/link")
        assert fs.readlink("/link") == "/real"
        assert fs.lookup("/link") == fs.lookup("/real")
        assert fs.lookup("/link", follow=False) != fs.lookup("/real")

    def test_follow_through_file_io(self):
        fs = make_fs()
        ino = fs.create("/data")
        fs.write(ino, 0, b"through the link")
        fs.symlink("/data", "/alias")
        assert fs.read(fs.lookup("/alias"), 0, 16) == b"through the link"
        fs.write(fs.lookup("/alias"), 0, b"UPDATED")
        assert fs.read(ino, 0, 7) == b"UPDATED"

    def test_relative_target(self):
        fs = make_fs()
        fs.mkdir("/d")
        ino = fs.create("/d/file")
        fs.write(ino, 0, b"rel")
        fs.symlink("file", "/d/rel_link")
        assert fs.lookup("/d/rel_link") == ino
        fs.symlink("d/file", "/from_root")
        assert fs.lookup("/from_root") == ino

    def test_intermediate_symlink_followed(self):
        fs = make_fs()
        fs.mkdir("/actual")
        ino = fs.create("/actual/f")
        fs.symlink("/actual", "/dirlink")
        assert fs.lookup("/dirlink/f") == ino
        ino2 = fs.create("/dirlink/g")
        assert fs.lookup("/actual/g") == ino2

    def test_dangling_symlink(self):
        fs = make_fs()
        fs.symlink("/nowhere", "/dangling")
        assert fs.readlink("/dangling") == "/nowhere"
        with pytest.raises(FileNotFound):
            fs.lookup("/dangling")

    def test_symlink_loop_detected(self):
        fs = make_fs()
        fs.symlink("/b", "/a")
        fs.symlink("/a", "/b")
        with pytest.raises(FSError, match="too many levels"):
            fs.lookup("/a")
        fs.symlink("/self", "/self2")  # avoid name clash
        fs.symlink("/self2", "/self")
        with pytest.raises(FSError, match="too many levels"):
            fs.lookup("/self/x")

    def test_unlink_removes_link_not_target(self):
        fs = make_fs()
        ino = fs.create("/real")
        fs.write(ino, 0, b"keep")
        fs.symlink("/real", "/link")
        fs.unlink("/link")
        assert not fs.exists("/link")
        assert fs.read(ino, 0, 4) == b"keep"

    def test_readlink_on_non_symlink(self):
        fs = make_fs()
        fs.create("/f")
        with pytest.raises(FSError, match="not a symlink"):
            fs.readlink("/f")

    def test_target_length_limit(self):
        fs = make_fs()
        fs.symlink("x" * 40, "/ok")
        with pytest.raises(ValueError):
            fs.symlink("x" * 41, "/toolong")

    def test_name_collision(self):
        fs = make_fs()
        fs.create("/taken")
        with pytest.raises(FileExists):
            fs.symlink("/x", "/taken")

    def test_stat_itype(self):
        fs = make_fs()
        fs.symlink("/t", "/l")
        st = fs.stat(fs.lookup("/l", follow=False))
        assert st.itype == ITYPE_SYMLINK


class TestPersistence:
    def test_symlink_survives_remount(self):
        fs = make_fs()
        ino = fs.create("/data")
        fs.write(ino, 0, b"x")
        fs.symlink("/data", "/link")
        fs.unmount()
        fs2 = NovaFS.mount(fs.dev)
        assert fs2.readlink("/link") == "/data"
        assert fs2.lookup("/link") == fs2.lookup("/data")
        check_fs_invariants(fs2)

    def test_symlink_survives_crash(self):
        fs = make_fs()
        fs.create("/data")
        fs.symlink("/data", "/link")
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        assert fs2.readlink("/link") == "/data"
        check_fs_invariants(fs2)

    def test_symlink_creation_crash_sweep(self):
        def build():
            fs = make_fs()
            fs.create("/data")

            def scenario():
                fs.symlink("/data", "/link")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            if fs2.exists("/link"):
                assert fs2.readlink("/link") == "/data"
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) >= 1

    def test_rename_of_symlink(self):
        fs = make_fs()
        fs.create("/data")
        fs.symlink("/data", "/old")
        fs.mkdir("/d")
        fs.rename("/old", "/d/new")
        assert fs.readlink("/d/new") == "/data"


class TestSymlinksWithDedup:
    def test_snapshot_preserves_symlinks(self):
        fs = make_fs(pages=2048, cls=DeNovaFS)
        ino = fs.create("/file")
        fs.write(ino, 0, bytes([4]) * PAGE_SIZE)
        fs.symlink("/file", "/link")
        fs.daemon.drain()
        rep = fs.snapshot("s")
        assert rep["files"] == 2  # the file + the symlink
        assert fs.readlink("/.snapshots/s/link") == "/file"
        # The snapshot's symlink still points at the *live* /file.
        assert fs.lookup("/.snapshots/s/link") == ino
        check_fs_invariants(fs)

    def test_dedup_through_symlinked_writes(self):
        fs = make_fs(pages=2048, cls=DeNovaFS)
        a = fs.create("/a")
        fs.symlink("/a", "/la")
        fs.write(fs.lookup("/la"), 0, bytes([6]) * PAGE_SIZE)
        b = fs.create("/b")
        fs.write(b, 0, bytes([6]) * PAGE_SIZE)
        fs.daemon.drain()
        assert fs.space_stats()["physical_pages"] == 1
        check_fs_invariants(fs)
