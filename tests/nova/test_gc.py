"""Tests for thorough log garbage collection."""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.log import ENTRIES_PER_PAGE
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(pages=2048, cls=NovaFS):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    fs = cls.mkfs(dev, max_inodes=64)
    # Disable the auto-trigger so tests control GC explicitly.
    fs.THOROUGH_GC_MIN_ENTRIES = 10 ** 9
    return fs


def fragment(fs, ino, rounds=40):
    """Rewrite two alternating pages to scatter dead entries."""
    for i in range(rounds):
        fs.write(ino, (i % 2) * PAGE_SIZE, bytes([i % 251]) * PAGE_SIZE)


class TestThoroughGC:
    def test_compacts_fragmented_log(self):
        fs = make_fs()
        ino = fs.create("/f")
        fragment(fs, ino, rounds=3 * ENTRIES_PER_PAGE)
        pages_before = len(list(fs.log.iter_pages(fs.caches[ino].inode.log_head)))
        rep = fs.gc(ino)
        assert rep["pages_reclaimed"] >= pages_before - 2
        assert rep["live_entries"] <= 4  # 2 live writes + setattr
        # Content intact.
        assert fs.read(ino, 0, PAGE_SIZE)[0] in range(251)
        check_fs_invariants(fs)

    def test_contents_identical_after_gc(self):
        fs = make_fs()
        ino = fs.create("/f")
        fragment(fs, ino, rounds=200)
        before = fs.read(ino, 0, 2 * PAGE_SIZE)
        size_before = fs.stat(ino).size
        fs.gc(ino)
        assert fs.read(ino, 0, 2 * PAGE_SIZE) == before
        assert fs.stat(ino).size == size_before

    def test_gc_survives_remount(self):
        fs = make_fs()
        ino = fs.create("/f")
        fragment(fs, ino, rounds=200)
        before = fs.read(ino, 0, 2 * PAGE_SIZE)
        fs.gc(ino)
        fs.unmount()
        fs2 = NovaFS.mount(fs.dev)
        ino2 = fs2.lookup("/f")
        assert fs2.read(ino2, 0, 2 * PAGE_SIZE) == before
        check_fs_invariants(fs2)

    def test_gc_of_directory_log(self):
        fs = make_fs()
        # Churn the root directory log with create/unlink cycles.
        for i in range(150):
            fs.create(f"/tmp{i}")
            fs.unlink(f"/tmp{i}")
        fs.create("/keeper")
        rep = fs.gc(1)  # ROOT_INO
        assert rep["pages_reclaimed"] >= 1
        assert fs.listdir("/") == ["keeper"]
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        assert fs2.listdir("/") == ["keeper"]
        check_fs_invariants(fs2)

    def test_gc_noop_cases(self):
        fs = make_fs()
        ino = fs.create("/f")
        assert fs.gc(ino)["skipped"] == "no log"
        fs.write(ino, 0, b"x")
        assert "skipped" in fs.gc(ino)  # nothing to shrink

    def test_gc_preserves_truncated_size(self):
        """The appended setattr pins the size even when the last write
        entry's size_after is stale."""
        fs = make_fs()
        ino = fs.create("/f")
        fragment(fs, ino, rounds=150)
        fs.truncate(ino, 100)
        fs.gc(ino)
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        assert fs2.stat(fs2.lookup("/f")).size == 100

    def test_auto_trigger(self):
        fs = make_fs()
        fs.THOROUGH_GC_MIN_ENTRIES = 2 * ENTRIES_PER_PAGE
        ino = fs.create("/f")
        fragment(fs, ino, rounds=6 * ENTRIES_PER_PAGE)
        cache = fs.caches[ino]
        pages = len(list(fs.log.iter_pages(cache.inode.log_head)))
        assert pages <= 3, "auto thorough GC never fired"
        assert fs.counters["log_pages_gced"] > 0


class TestGCWithDedup:
    def test_gc_vetoed_while_dedup_pending(self):
        fs = make_fs(cls=DeNovaFS)
        ino = fs.create("/f")
        fragment(fs, ino, rounds=150)
        rep = fs.gc(ino)
        assert rep.get("skipped") == "pending dedup entries"
        fs.daemon.drain()
        rep = fs.gc(ino)
        assert rep["pages_reclaimed"] >= 1
        check_fs_invariants(fs)

    def test_gc_preserves_shared_pages(self):
        fs = make_fs(cls=DeNovaFS)
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, bytes([9]) * PAGE_SIZE)
        fs.write(b, 0, bytes([9]) * PAGE_SIZE)
        fragment(fs, a, rounds=150)
        fs.write(a, 0, bytes([9]) * PAGE_SIZE)  # share again
        fs.daemon.drain()
        fs.gc(a)
        assert fs.read(a, 0, PAGE_SIZE) == bytes([9]) * PAGE_SIZE
        assert fs.read(b, 0, PAGE_SIZE) == bytes([9]) * PAGE_SIZE
        check_fs_invariants(fs)


class TestGCCrashes:
    def test_gc_crash_sweep(self):
        """Crash at every persistence event of a thorough GC: the file
        must read identically before and after recovery."""
        content_box = {}

        def build():
            fs = make_fs(pages=1024)
            ino = fs.create("/f")
            fragment(fs, ino, rounds=150)
            content_box["data"] = fs.read(ino, 0, 2 * PAGE_SIZE)
            content_box["size"] = fs.stat(ino).size

            def scenario():
                fs.gc(ino)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            ino2 = fs2.lookup("/f")
            assert fs2.stat(ino2).size == content_box["size"]
            assert fs2.read(ino2, 0, 2 * PAGE_SIZE) == content_box["data"]
            check_fs_invariants(fs2)
            # The recovered filesystem keeps working.
            fs2.write(ino2, 0, b"post-recovery write")
            assert fs2.read(ino2, 0, 19) == b"post-recovery write"

        assert sweep_crash_points(build, check) > 3

    def test_gc_crash_sweep_torn(self):
        def build():
            fs = make_fs(pages=1024)
            ino = fs.create("/f")
            fragment(fs, ino, rounds=120)

            def scenario():
                fs.gc(ino)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            ino2 = fs2.lookup("/f")
            data = fs2.read(ino2, 0, 2 * PAGE_SIZE)
            assert len(data) == fs2.stat(ino2).size == 2 * PAGE_SIZE
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check, mode="torn") > 3

    def test_head_tail_window_rebuilds_tail(self):
        """Deterministically hit the head-updated/tail-stale window."""
        from repro.pm.device import CrashRequested

        fs = make_fs(pages=1024)
        ino = fs.create("/f")
        fragment(fs, ino, rounds=150)
        expected = fs.read(ino, 0, 2 * PAGE_SIZE)
        head_before = fs.caches[ino].inode.log_head

        # Crash on the persistence event after the head switch by
        # counting events: chain build (1), head update (2), tail (3).
        events = []
        def counter(n, dev):
            events.append(n)
            # chain build = 1 fence; head update = 2nd; crash before 3rd
            # (the tail update).
            if len(events) == 3:
                raise CrashRequested("pre-tail", n)

        fs.dev.hooks.on_persist = counter
        with pytest.raises(CrashRequested):
            fs.gc(ino)
        fs.dev.hooks.on_persist = None
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        rep = fs2.last_recovery
        ino2 = fs2.lookup("/f")
        assert fs2.read(ino2, 0, 2 * PAGE_SIZE) == expected
        # Either the crash landed before the head switch (old log whole)
        # or the tail was rebuilt by the zero-scan.
        if fs2.caches[ino2].inode.log_head != head_before:
            assert rep.extra.get("gc_tails_rebuilt", 0) == 1
        check_fs_invariants(fs2)
