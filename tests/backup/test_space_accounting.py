"""Space accounting: du/space_stats logical-vs-physical consistency with
FACT RFC sums, including snapshot-shared pages."""

import io

import pytest

from repro.backup import receive_backup, send_backup
from repro.dedup import DeNovaFS
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock

pytestmark = pytest.mark.backup


def make_fs(pages=4096):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


def assert_rfc_identity(fs):
    """The drained-state invariant: every logical page reference is
    either counted by some FACT entry's RFC or un-fingerprinted."""
    st = fs.space_stats()
    assert st["logical_pages"] == st["rfc_sum"] + st["unfingerprinted_refs"]
    return st


class TestDu:
    def test_logical_counts_every_reference(self):
        fs = make_fs()
        f = fs.create("/f")
        fs.write(f, 0, page_of(1) + page_of(2) + page_of(1))  # dup mapping
        fs.daemon.drain()
        d = fs.du("/")
        assert d["files"] == 1
        assert d["logical_pages"] == 3      # per mapping, not per block
        assert d["unique_pages"] == 2
        assert d["shared_pages"] == 1       # page_of(1) mapped twice
        assert d["logical_bytes"] == 3 * PAGE_SIZE
        assert d["physical_bytes"] == 2 * PAGE_SIZE
        assert d["saved_bytes"] == PAGE_SIZE

    def test_snapshot_shared_pages_count_per_reference(self):
        fs = make_fs()
        f = fs.create("/f")
        fs.write(f, 0, page_of(1) + page_of(2))
        fs.daemon.drain()
        fs.snapshot("s1")
        fs.snapshot("s2")
        d = fs.du("/")
        # Live file + two snapshot copies: 3 references per block.
        assert d["logical_pages"] == 6
        assert d["unique_pages"] == 2
        assert d["shared_pages"] == 2
        assert d["saved_bytes"] == 4 * PAGE_SIZE
        snaps = fs.du("/.snapshots")
        assert snaps["logical_pages"] == 4 and snaps["unique_pages"] == 2

    def test_du_subtree_scoping(self):
        fs = make_fs()
        fs.mkdir("/a")
        f = fs.create("/a/f")
        fs.write(f, 0, page_of(1))
        g = fs.create("/g")
        fs.write(g, 0, page_of(2))
        fs.daemon.drain()
        assert fs.du("/a")["logical_pages"] == 1
        assert fs.du("/")["logical_pages"] == 2


class TestSpaceStats:
    def test_rfc_identity_plain_tree(self):
        fs = make_fs()
        f = fs.create("/f")
        fs.write(f, 0, page_of(1) + page_of(2) + page_of(1))
        g = fs.create("/g")
        fs.write(g, 0, page_of(2))
        fs.daemon.drain()
        st = assert_rfc_identity(fs)
        assert st["logical_pages"] == 4
        assert st["physical_pages"] == 2
        assert st["snapshots"]["count"] == 0

    def test_rfc_identity_with_snapshots(self):
        fs = make_fs()
        f = fs.create("/f")
        fs.write(f, 0, page_of(1) + page_of(2))
        fs.daemon.drain()
        fs.snapshot("s1")
        st = assert_rfc_identity(fs)
        assert st["logical_pages"] == 4
        assert st["physical_pages"] == 2
        assert st["snapshots"] == {"count": 1, "logical_pages": 2,
                                   "unique_pages": 2}
        assert st["rfc_sum"] == 4

    def test_rfc_identity_after_receive(self):
        src = make_fs()
        f = src.create("/f")
        src.write(f, 0, page_of(1) + page_of(2) + page_of(3))
        src.daemon.drain()
        src.snapshot("s1")
        buf = io.BytesIO()
        send_backup(src, "s1", buf)
        buf.seek(0)

        dst = make_fs()
        g = dst.create("/g")
        dst.write(g, 0, page_of(1))
        dst.daemon.drain()
        receive_backup(dst, buf)
        st = assert_rfc_identity(dst)
        # /g's page + three snapshot pages + the /.repl chain-metadata
        # sidecar recv records at commit; page_of(1) shared.
        assert st["logical_pages"] == 5
        assert st["physical_pages"] == 4
        assert st["snapshots"]["count"] == 1

    def test_unfingerprinted_pages_balance(self):
        """Pages whose offline dedup has not run yet sit on the
        un-fingerprinted side of the identity, not in rfc_sum."""
        fs = make_fs()
        f = fs.create("/f")
        fs.write(f, 0, page_of(1) + page_of(2))
        # No drain: dedup still queued, so no FACT entries exist.
        st = fs.space_stats()
        assert st["rfc_sum"] == 0
        assert st["unfingerprinted_refs"] == 2
        assert st["logical_pages"] == 2
        fs.daemon.drain()
        st = assert_rfc_identity(fs)
        assert st["unfingerprinted_refs"] == 0

    def test_delete_snapshot_restores_counts(self):
        fs = make_fs()
        f = fs.create("/f")
        fs.write(f, 0, page_of(1) + page_of(2))
        fs.daemon.drain()
        before = assert_rfc_identity(fs)
        fs.snapshot("s1")
        fs.delete_snapshot("s1")
        fs.daemon.drain()
        after = assert_rfc_identity(fs)
        assert after["logical_pages"] == before["logical_pages"]
        assert after["rfc_sum"] == before["rfc_sum"]
