"""Resumable transfers: the sender's sidecar cursor and the receiver's
in-image cursor, including invalidation when the source is recreated."""

import json

import pytest

from repro.backup import (
    STAGE_DIR,
    receive_backup,
    send_backup,
    send_cursor_path,
    stage_cursor,
    stage_path_for,
    verify_snapshot,
    verify_stream,
)
from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock

pytestmark = pytest.mark.backup


def make_fs(pages=4096):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


def source_with_pages(n=6):
    """Four tree entries (dir, two files, symlink), n distinct pages."""
    fs = make_fs()
    fs.mkdir("/d")
    f = fs.create("/d/f")
    fs.write(f, 0, b"".join(page_of(10 + i) for i in range(n - 1)))
    g = fs.create("/g")
    fs.write(g, 0, page_of(10 + n - 1))
    fs.symlink("/d/f", "/link")
    fs.daemon.drain()
    fs.snapshot("s1")
    return fs


class TestSendResume:
    def test_partial_send_leaves_cursor(self, tmp_path):
        src = source_with_pages()
        out = str(tmp_path / "s1.bkp")
        rep = send_backup(src, "s1", out, max_records=2)
        assert not rep["complete"] and rep["records_written"] == 2
        cur = json.loads(open(send_cursor_path(out)).read())
        assert cur["records"] == 2 and cur["stream_id"] == rep["stream_id"]
        assert not verify_stream(out)["complete"]

    def test_resume_completes_identically(self, tmp_path):
        src = source_with_pages()
        out = str(tmp_path / "s1.bkp")
        oneshot = str(tmp_path / "oneshot.bkp")
        send_backup(src, "s1", oneshot)
        send_backup(src, "s1", out, max_records=2)
        rep = send_backup(src, "s1", out)
        assert rep["complete"] and rep["resumed_at"] == 2
        assert rep["records_new"] == rep["records_total"] - 2
        assert not send_cursor_path(out) in str(list(tmp_path.iterdir()))
        assert open(out, "rb").read() == open(oneshot, "rb").read()

    def test_resume_truncates_torn_trailing_record(self, tmp_path):
        """A crash mid-record leaves junk past the cursor offset; resume
        must cut it at the closed-form boundary, not splice it."""
        src = source_with_pages()
        out = str(tmp_path / "s1.bkp")
        send_backup(src, "s1", out, max_records=2)
        with open(out, "ab") as fh:
            fh.write(b"\x99" * 123)  # torn third record
        rep = send_backup(src, "s1", out)
        assert rep["complete"] and rep["resumed_at"] == 2
        assert verify_stream(out)["ok"]

    def test_recreated_snapshot_invalidates_cursor(self, tmp_path):
        src = source_with_pages()
        out = str(tmp_path / "s1.bkp")
        send_backup(src, "s1", out, max_records=2)
        src.delete_snapshot("s1")
        ino = src.lookup("/d/f")
        src.write(ino, 0, page_of(99))
        src.daemon.drain()
        src.snapshot("s1")
        rep = send_backup(src, "s1", out)
        # Different stream_id: the stale cursor must not be honored.
        assert rep["resumed_at"] == 0 and rep["complete"]
        assert verify_stream(out)["ok"]

    def test_no_resume_flag_restarts(self, tmp_path):
        src = source_with_pages()
        out = str(tmp_path / "s1.bkp")
        send_backup(src, "s1", out, max_records=2)
        rep = send_backup(src, "s1", out, resume=False)
        assert rep["resumed_at"] == 0 and rep["complete"]
        assert verify_stream(out)["ok"]


class TestRecvResume:
    def stream_for(self, src, tmp_path, name="s1"):
        out = str(tmp_path / f"{name}.bkp")
        send_backup(src, name, out)
        return out

    def test_partial_recv_stages_with_cursor(self, tmp_path):
        src = source_with_pages()
        stream = self.stream_for(src, tmp_path)
        dst = make_fs()
        rep = receive_backup(dst, stream, max_entries=2)
        assert not rep["committed"]
        assert dst.list_snapshots() == []          # nothing published
        # Staging visible, namespaced by stream id for fan-in isolation.
        stage = stage_path_for(dst, "s1")
        assert stage == f"{STAGE_DIR}/s1@{rep['stream_id'][:12]}"
        cur = stage_cursor(dst, "s1")
        assert cur["stream_id"] == rep["stream_id"] and cur["applied"] == 2
        assert cur["active"] is False              # pause was clean

    def test_resume_skips_published_entries(self, tmp_path):
        src = source_with_pages()
        stream = self.stream_for(src, tmp_path)
        dst = make_fs()
        receive_backup(dst, stream, max_entries=2)
        rep = receive_backup(dst, stream)
        assert rep["resumed"] and rep["committed"]
        assert rep["entries_skipped"] == 2
        assert stage_cursor(dst, "s1") is None
        assert not dst.exists(STAGE_DIR)
        assert verify_snapshot(dst, stream, deep=True)["ok"]
        check_fs_invariants(dst)

    def test_resume_survives_clean_remount(self, tmp_path):
        """Clean unmount preserves staging; the cursor lives in-image."""
        src = source_with_pages()
        stream = self.stream_for(src, tmp_path)
        dst = make_fs()
        receive_backup(dst, stream, max_entries=2)
        dev = dst.dev
        dst.unmount()
        dst = DeNovaFS.mount(dev)
        assert dst.last_recovery.clean
        assert stage_path_for(dst, "s1")      # kept: unmount was clean
        rep = receive_backup(dst, stream)
        assert rep["resumed"] and rep["committed"]
        assert verify_snapshot(dst, stream, deep=True)["ok"]

    def test_stale_stream_id_tears_down_staging(self, tmp_path):
        src = source_with_pages()
        old = self.stream_for(src, tmp_path)
        dst = make_fs()
        receive_backup(dst, old, max_entries=2)

        # Source snapshot recreated with different content => new id.
        src.delete_snapshot("s1")
        ino = src.lookup("/d/f")
        src.write(ino, 0, page_of(77))
        src.daemon.drain()
        src.snapshot("s1")
        new = str(tmp_path / "new.bkp")
        send_backup(src, "s1", new)

        rep = receive_backup(dst, new)
        assert not rep["resumed"]            # stale staging was discarded
        assert rep["entries_skipped"] == 0
        assert rep["committed"]
        assert verify_snapshot(dst, new, deep=True)["ok"]
        check_fs_invariants(dst)
