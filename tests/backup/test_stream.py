"""Wire-format tests for the repro.backup/1 send stream."""

import io
import struct

import pytest

from repro.backup.stream import (
    END_MAGIC,
    FORMAT,
    REC_HEADER_BYTES,
    STREAM_MAGIC,
    StreamError,
    build_manifest,
    index_records,
    manifest_stream_id,
    read_header,
    read_record_at,
    record_bytes,
    stream_size,
    write_header,
    write_record,
    write_trailer,
)
from repro.nova.layout import PAGE_SIZE

pytestmark = pytest.mark.backup


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


def fp_of(tag):
    return bytes([tag & 0xFF]) * 20


def small_stream(npages=3):
    """A complete stream with npages distinct records."""
    pages = {fp_of(i).hex(): page_of(i) for i in range(1, npages + 1)}
    novel = sorted(pages)
    tree = [["file", "f", npages * PAGE_SIZE,
             [[i, fp] for i, fp in enumerate(novel)]]]
    manifest = build_manifest("s1", None, tree, novel, PAGE_SIZE)
    buf = io.BytesIO()
    header_len = write_header(buf, manifest)
    for fp in novel:
        write_record(buf, bytes.fromhex(fp), pages[fp])
    write_trailer(buf, len(novel), manifest["stream_id"])
    return buf, manifest, header_len, pages


class TestHeader:
    def test_round_trip(self):
        buf, manifest, header_len, _ = small_stream()
        got, got_len = read_header(buf)
        assert got == manifest
        assert got_len == header_len
        assert got["format"] == FORMAT

    def test_bad_magic(self):
        buf = io.BytesIO(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(StreamError, match="magic"):
            read_header(buf)

    def test_torn_manifest_crc(self):
        buf, _m, header_len, _ = small_stream()
        raw = bytearray(buf.getvalue())
        raw[len(STREAM_MAGIC) + 6] ^= 0xFF  # flip a manifest byte
        with pytest.raises(StreamError, match="CRC"):
            read_header(io.BytesIO(bytes(raw)))

    def test_unsupported_format(self):
        manifest = build_manifest("s", None, [], [], PAGE_SIZE)
        manifest["format"] = "repro.backup/99"
        buf = io.BytesIO()
        write_header(buf, manifest)
        with pytest.raises(StreamError, match="format"):
            read_header(buf)

    def test_stream_id_must_match_content(self):
        manifest = build_manifest("s", None, [], [], PAGE_SIZE)
        manifest["stream_id"] = "0" * 40  # forged identity
        buf = io.BytesIO()
        write_header(buf, manifest)
        with pytest.raises(StreamError, match="stream_id"):
            read_header(buf)

    def test_truncated_header(self):
        buf, _m, _hl, _ = small_stream()
        cut = io.BytesIO(buf.getvalue()[:20])
        with pytest.raises(StreamError, match="truncated"):
            read_header(cut)


class TestRecords:
    def test_index_complete(self):
        buf, manifest, header_len, pages = small_stream(4)
        idx = index_records(buf, header_len, manifest)
        assert idx.complete
        assert idx.nrecords == 4
        assert set(idx.offsets) == set(pages)
        assert idx.data_bytes == 4 * PAGE_SIZE
        for fp, data in pages.items():
            assert read_record_at(buf, fp, idx) == data

    def test_closed_form_size(self):
        buf, manifest, header_len, pages = small_stream(3)
        assert record_bytes(PAGE_SIZE) == REC_HEADER_BYTES + PAGE_SIZE
        assert len(buf.getvalue()) == stream_size(header_len, 3, PAGE_SIZE)

    def test_truncated_stream_not_complete(self):
        buf, manifest, header_len, _ = small_stream(3)
        # Cut mid-way through the last record's data.
        cut = io.BytesIO(buf.getvalue()[:header_len
                                        + 2 * record_bytes(PAGE_SIZE) + 40])
        idx = index_records(cut, header_len, manifest)
        assert not idx.complete
        assert idx.nrecords == 2  # whole records only

    def test_record_crc_detects_bit_flip(self):
        buf, manifest, header_len, pages = small_stream(2)
        raw = bytearray(buf.getvalue())
        raw[header_len + REC_HEADER_BYTES + 100] ^= 0x01  # first record data
        buf2 = io.BytesIO(bytes(raw))
        idx = index_records(buf2, header_len, manifest)
        first = sorted(pages)[0]
        with pytest.raises(StreamError, match="CRC"):
            read_record_at(buf2, first, idx)

    def test_missing_fp_raises(self):
        buf, manifest, header_len, _ = small_stream(1)
        idx = index_records(buf, header_len, manifest)
        with pytest.raises(StreamError, match="no record"):
            read_record_at(buf, "ab" * 20, idx)

    def test_bad_record_magic(self):
        buf, manifest, header_len, _ = small_stream(2)
        raw = bytearray(buf.getvalue())
        struct.pack_into("<I", raw, header_len, 0xDEADBEEF)
        with pytest.raises(StreamError, match="record magic"):
            index_records(io.BytesIO(bytes(raw)), header_len, manifest)


class TestTrailer:
    def test_trailer_crc(self):
        buf, manifest, header_len, _ = small_stream(2)
        raw = bytearray(buf.getvalue())
        raw[-1] ^= 0xFF  # corrupt trailer CRC
        with pytest.raises(StreamError, match="trailer CRC"):
            index_records(io.BytesIO(bytes(raw)), header_len, manifest)

    def test_trailer_count_mismatch(self):
        buf, manifest, header_len, _ = small_stream(2)
        raw = buf.getvalue()
        # Rebuild with a lying trailer claiming 3 records.
        body = raw[:header_len + 2 * record_bytes(PAGE_SIZE)]
        forged = io.BytesIO(body)
        forged.seek(0, 2)
        write_trailer(forged, 3, manifest["stream_id"])
        with pytest.raises(StreamError, match="trailer counts"):
            index_records(forged, header_len, manifest)

    def test_end_magic_value(self):
        # The trailer's magic must be distinguishable from a record's.
        buf, manifest, header_len, _ = small_stream(1)
        raw = buf.getvalue()
        off = header_len + record_bytes(PAGE_SIZE)
        (magic,) = struct.unpack_from("<I", raw, off)
        assert magic == END_MAGIC

    def test_stream_id_binds_trailer(self):
        # Same record count, different manifest => trailer CRC differs.
        a = manifest_stream_id("s1", None, [], [])
        b = manifest_stream_id("s2", None, [], [])
        assert a != b
        ta, tb = io.BytesIO(), io.BytesIO()
        write_trailer(ta, 5, a)
        write_trailer(tb, 5, b)
        assert ta.getvalue() != tb.getvalue()
