"""Round-trip property: send from A + recv into fresh B => identical
tree and fingerprint set; incremental sends ship only novel blocks."""

import io

import pytest

from repro.backup import (
    diff_snapshots,
    receive_backup,
    send_backup,
    snapshot_fingerprints,
    verify_snapshot,
    verify_stream,
)
from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.nova.fs import FileExists
from repro.pm import DRAM, PMDevice, SimClock

pytestmark = pytest.mark.backup


def make_fs(pages=4096):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


def tree_of(fs, top="/"):
    """{path: descriptor} over the whole tree, snapshot dirs included."""
    out = {}
    for dirpath, dirnames, filenames in fs.walk(top):
        for d in dirnames:
            out[f"{dirpath.rstrip('/')}/{d}"] = ("dir",)
        for f in filenames:
            path = f"{dirpath.rstrip('/')}/{f}"
            ino = fs.lookup(path, follow=False)
            cache = fs.caches[ino]
            if cache.inode.itype == 3:
                out[path] = ("symlink", cache.symlink_target)
            else:
                size = cache.inode.size
                out[path] = ("file", size, fs.read(ino, 0, size))
    return out


def populate_source(fs):
    """Dirs, symlink, dup pages, sparse file — every tree-entry kind."""
    fs.mkdir("/docs")
    a = fs.create("/docs/a")
    fs.write(a, 0, page_of(1) + page_of(2) + page_of(1))  # intra-file dup
    b = fs.create("/b")
    fs.write(b, 0, page_of(2) + page_of(3))               # cross-file dup
    fs.symlink("/docs/a", "/link")
    sparse = fs.create("/sparse")
    fs.truncate(sparse, 3 * PAGE_SIZE)                     # no pages at all
    fs.daemon.drain()


def send_to_memory(fs, name, base=None):
    buf = io.BytesIO()
    report = send_backup(fs, name, buf, base=base)
    buf.seek(0)
    return buf, report


class TestRoundTrip:
    def test_full_backup_round_trips(self):
        src = make_fs()
        populate_source(src)
        src.snapshot("s1")
        stream, sent = send_to_memory(src, "s1")
        assert sent["complete"]
        # 3 distinct fingerprints; dup references never get records.
        assert sent["records_total"] == 3
        assert sent["total_pages"] == 5 and sent["unique_pages"] == 3

        dst = make_fs()
        got = receive_backup(dst, stream)
        assert got["committed"]
        assert got["pages_novel"] == 3 and got["pages_dup"] == 2
        assert dst.list_snapshots() == ["s1"]

        # Byte-identical subtree, relocated under /.snapshots/s1.
        want = tree_of(src, "/.snapshots/s1")
        have = tree_of(dst, "/.snapshots/s1")
        rebase = {p.replace("/.snapshots/s1", "", 1): d
                  for p, d in want.items()}
        assert {p.replace("/.snapshots/s1", "", 1): d
                for p, d in have.items()} == rebase
        # Fingerprint sets match exactly.
        assert snapshot_fingerprints(dst, "s1") \
            == snapshot_fingerprints(src, "s1")
        check_fs_invariants(dst)

    def test_verify_stream_and_snapshot(self):
        src = make_fs()
        populate_source(src)
        src.snapshot("s1")
        stream, _ = send_to_memory(src, "s1")
        v = verify_stream(stream)
        assert v["ok"] and v["complete"] and v["records"] == 3

        dst = make_fs()
        receive_backup(dst, stream)
        assert verify_snapshot(dst, stream)["ok"]
        assert verify_snapshot(dst, stream, deep=True)["ok"]

    def test_recv_dedups_against_target_fact(self):
        src = make_fs()
        f = src.create("/f")
        src.write(f, 0, page_of(1) + page_of(2) + page_of(3))
        src.daemon.drain()
        src.snapshot("s1")
        stream, _ = send_to_memory(src, "s1")

        dst = make_fs()
        g = dst.create("/g")
        dst.write(g, 0, page_of(1) + page_of(2))  # target already holds 2
        dst.daemon.drain()
        before = dst.statfs()["used_pages"]
        got = receive_backup(dst, stream)
        assert got["pages_dup"] == 2 and got["pages_novel"] == 1
        # Only the one novel page costs data space (plus metadata and
        # the /.repl chain-metadata sidecar recorded at commit).
        assert dst.statfs()["used_pages"] <= before + 1 + 7
        ino = dst.lookup("/.snapshots/s1/f")
        assert dst.read(ino, 0, 3 * PAGE_SIZE) \
            == page_of(1) + page_of(2) + page_of(3)
        check_fs_invariants(dst)

    def test_recv_into_existing_snapshot_refused(self):
        src = make_fs()
        populate_source(src)
        src.snapshot("s1")
        stream, _ = send_to_memory(src, "s1")
        dst = make_fs()
        receive_backup(dst, stream)
        stream.seek(0)
        with pytest.raises(FileExists):
            receive_backup(dst, stream)


class TestIncremental:
    def test_incremental_ships_only_novel_fraction(self):
        """k% shared with the base => only (100-k)% gets data records."""
        src = make_fs()
        f = src.create("/f")
        src.write(f, 0, b"".join(page_of(10 + i) for i in range(20)))
        src.daemon.drain()
        src.snapshot("s1")
        # Change 25% of the pages (5 of 20) to fresh content.
        for i in range(5):
            src.write(f, i * PAGE_SIZE, page_of(100 + i))
        src.daemon.drain()
        src.snapshot("s2")

        diff = diff_snapshots(src, "s2", base="s1")
        assert len(diff.novel) == 5
        assert diff.base_shared_pages == 15

        stream, sent = send_to_memory(src, "s2", base="s1")
        assert sent["records_total"] == 5
        full, full_sent = send_to_memory(src, "s2")
        assert full_sent["records_total"] == 20
        # Stream size scales with the novel fraction.
        assert len(stream.getvalue()) < 0.4 * len(full.getvalue())

    def test_incremental_recv_after_base(self):
        src = make_fs()
        f = src.create("/f")
        src.write(f, 0, page_of(1) + page_of(2))
        src.daemon.drain()
        src.snapshot("s1")
        src.write(f, 2 * PAGE_SIZE, page_of(3))
        src.daemon.drain()
        src.snapshot("s2")

        s1_stream, _ = send_to_memory(src, "s1")
        s2_stream, sent2 = send_to_memory(src, "s2", base="s1")
        assert sent2["records_total"] == 1  # only page 3 is novel

        dst = make_fs()
        receive_backup(dst, s1_stream)
        got = receive_backup(dst, s2_stream)
        # The incremental's shared pages dedup against the base copy.
        assert got["pages_dup"] == 2 and got["pages_novel"] == 1
        assert dst.list_snapshots() == ["s1", "s2"]
        assert verify_snapshot(dst, s2_stream, deep=True)["ok"]


class TestDeletedBackupSource:
    def test_delete_source_snapshot_leaks_no_fact_entries(self):
        """Deleting the snapshot a send came from drops every RFC it
        pinned; once the live files go too, the table drains to empty."""
        src = make_fs()
        populate_source(src)
        src.snapshot("s1")
        _stream, _ = send_to_memory(src, "s1")

        src.delete_snapshot("s1")
        src.daemon.drain()
        st = src.space_stats()
        # Only the live tree's references remain (5 mappings, 3 blocks).
        assert st["logical_pages"] == 5
        assert st["rfc_sum"] + st["unfingerprinted_refs"] == 5

        for path in ("/docs/a", "/b", "/sparse"):
            src.unlink(path)
        src.unlink("/link")
        src.daemon.drain()
        src.fact.remove_dead()
        assert src.fact.live_entries() == {}
        check_fs_invariants(src)

    def test_recreated_source_changes_stream_id(self):
        """Delete + recreate under the same name => a different stream
        identity, so stale cursors can never splice streams."""
        src = make_fs()
        f = src.create("/f")
        src.write(f, 0, page_of(1))
        src.daemon.drain()
        src.snapshot("s1")
        _, first = send_to_memory(src, "s1")

        src.delete_snapshot("s1")
        src.write(f, 0, page_of(2))
        src.daemon.drain()
        src.snapshot("s1")
        _, second = send_to_memory(src, "s1")
        assert first["stream_id"] != second["stream_id"]
