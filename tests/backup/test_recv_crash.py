"""Failure atomicity of backup ingest: a crash torn anywhere leaves the
target fsck-clean with the partial snapshot absent (and no FACT leaks).
Rollback is per-stream: only stages whose cursor is absent or still
``active`` (torn mid-recv) are removed; cleanly-paused stages survive."""

import io
import json

import pytest

from repro.backup import (
    STAGE_DIR,
    receive_backup,
    send_backup,
    stage_path_for,
    verify_snapshot,
)
from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.fuzz import FuzzConfig, run_backup_case
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock

pytestmark = pytest.mark.backup


def make_fs(pages=4096):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


def stream_of(npages=4, name="s1", base_tag=20):
    """Four tree entries so max_entries=2 interrupts mid-transfer."""
    src = make_fs()
    src.mkdir("/d")
    f = src.create("/d/f")
    src.write(f, 0, b"".join(page_of(base_tag + i) for i in range(npages - 1)))
    g = src.create("/g")
    src.write(g, 0, page_of(base_tag + npages - 1))
    src.symlink("/d/f", "/link")
    src.daemon.drain()
    src.snapshot(name)
    buf = io.BytesIO()
    send_backup(src, name, buf)
    buf.seek(0)
    return buf


def mark_torn(fs, name):
    """Flip the staged cursor back to ``active`` — exactly the persistent
    state a recv crash leaves between its per-entry cursor writes."""
    cpath = stage_path_for(fs, name) + ".cursor"
    ino = fs.lookup(cpath, follow=False)
    cur = json.loads(fs.read(ino, 0, fs.stat(ino).size).decode())
    cur["active"] = True
    fs.truncate(ino, 0)
    fs.write(ino, 0, json.dumps(cur).encode())


class TestUncleanRollback:
    def test_crash_mid_ingest_rolls_back(self):
        """Power loss with an *active* stage on disk: the unclean mount
        removes it, frees its pages, and retires its FACT references."""
        stream = stream_of()
        dst = make_fs()
        g = dst.create("/g")
        dst.write(g, 0, page_of(1))
        dst.daemon.drain()
        live_before = len(dst.fact.live_entries())
        used_before = dst.statfs()["used_pages"]

        receive_backup(dst, stream, max_entries=2)  # stops mid-transfer
        mark_torn(dst, "s1")                        # as if torn mid-entry
        dev = dst.dev
        dev.crash(mode="discard")
        dev.recover_view()

        rec = DeNovaFS.mount(dev)
        assert not rec.last_recovery.clean
        rb = rec.last_recovery.extra["backup_rollback"]
        assert rb["stages"] == 1 and rb["kept"] == 0
        assert not rec.exists(STAGE_DIR)
        assert rec.list_snapshots() == []
        # No leaked FACT entries or pages from the torn ingest.
        assert len(rec.fact.live_entries()) == live_before
        assert rec.statfs()["used_pages"] <= used_before + 1
        ino = rec.lookup("/g")
        assert rec.read(ino, 0, PAGE_SIZE) == page_of(1)
        check_fs_invariants(rec)

    def test_clean_pause_survives_unclean_mount(self):
        """A cleanly-paused stage (cursor ``active=False``) holds only
        per-entry-committed files: the crash fsck keeps it for resume."""
        stream = stream_of()
        dst = make_fs()
        receive_backup(dst, stream, max_entries=2)
        dev = dst.dev
        dev.crash(mode="discard")
        dev.recover_view()

        rec = DeNovaFS.mount(dev)
        assert not rec.last_recovery.clean
        assert "backup_rollback" not in rec.last_recovery.extra
        assert stage_path_for(rec, "s1") is not None
        stream.seek(0)
        rep = receive_backup(rec, stream)
        assert rep["committed"] and rep["resumed"]
        assert rep["entries_skipped"] == 2
        stream.seek(0)
        assert verify_snapshot(rec, stream, deep=True)["ok"]
        check_fs_invariants(rec)

    def test_retry_after_rollback_commits(self):
        stream = stream_of()
        dst = make_fs()
        receive_backup(dst, stream, max_entries=2)
        mark_torn(dst, "s1")
        dev = dst.dev
        dev.crash(mode="discard")
        dev.recover_view()
        rec = DeNovaFS.mount(dev)

        stream.seek(0)
        rep = receive_backup(rec, stream)
        assert rep["committed"] and not rep["resumed"]
        stream.seek(0)
        assert verify_snapshot(rec, stream, deep=True)["ok"]
        check_fs_invariants(rec)

    def test_clean_unmount_is_not_rolled_back(self):
        stream = stream_of()
        dst = make_fs()
        receive_backup(dst, stream, max_entries=2)
        dev = dst.dev
        dst.unmount()
        rec = DeNovaFS.mount(dev)
        assert rec.last_recovery.clean
        assert "backup_rollback" not in rec.last_recovery.extra
        assert stage_path_for(rec, "s1") is not None

    def test_fan_in_rolls_back_only_torn_stream(self):
        """Two concurrent ingests into one target (fan-in): the unclean
        mount removes exactly the torn stream's stage; the cleanly
        paused sibling keeps its progress and resumes to commit."""
        s_a = stream_of(name="a", base_tag=20)
        s_b = stream_of(name="b", base_tag=40)
        dst = make_fs()
        receive_backup(dst, s_a, max_entries=2)   # pauses cleanly
        receive_backup(dst, s_b, max_entries=2)
        mark_torn(dst, "b")                       # b torn mid-entry
        dev = dst.dev
        dev.crash(mode="discard")
        dev.recover_view()

        rec = DeNovaFS.mount(dev)
        rb = rec.last_recovery.extra["backup_rollback"]
        assert rb["stages"] == 1 and rb["kept"] == 1
        assert stage_path_for(rec, "a") is not None
        assert stage_path_for(rec, "b") is None
        check_fs_invariants(rec)

        s_a.seek(0)
        rep_a = receive_backup(rec, s_a)
        assert rep_a["committed"] and rep_a["resumed"]
        assert rep_a["entries_skipped"] == 2
        s_b.seek(0)
        rep_b = receive_backup(rec, s_b)
        assert rep_b["committed"] and not rep_b["resumed"]
        assert sorted(rec.list_snapshots()) == ["a", "b"]
        for stream, name in ((s_a, "a"), (s_b, "b")):
            stream.seek(0)
            assert verify_snapshot(rec, stream, deep=True)["ok"]
        check_fs_invariants(rec)


class TestIngestCrashSweep:
    def test_sweep_every_persistence_event(self):
        """Tear the ingest at persistence events in both phases/modes;
        every recovery must be fsck-clean with the snapshot all-or-
        nothing and re-receivable (see repro.fuzz.backup)."""
        cfg = FuzzConfig(seed=2, seq_ops=24, budget=8, pages=2048)
        result = run_backup_case(cfg)
        assert result.crash_points > 0
        assert result.ok, "\n".join(str(v) for v in result.violations)

    @pytest.mark.fuzz
    @pytest.mark.slow
    def test_sweep_campaign(self):
        """Broader multi-seed sweep for the CI fuzz job."""
        for seed in range(4):
            cfg = FuzzConfig(seed=seed, seq_ops=40, budget=16, pages=2048)
            result = run_backup_case(cfg)
            assert result.ok, (seed,
                               [str(v) for v in result.violations])
