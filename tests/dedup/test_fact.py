"""Unit tests for the FACT table: lookup/insert/counts/delete pointers."""

import hashlib

import pytest

from repro.dedup.fact import FACT, FactCorruption, FactFull
from repro.nova.layout import PAGE_SIZE, Geometry, Superblock
from repro.pm import DRAM, PMDevice, SimClock

N_BITS = 7  # DAA = 128 slots; device has 128 pages


@pytest.fixture
def fact():
    dev = PMDevice(128 * PAGE_SIZE, model=DRAM, clock=SimClock())
    geo = Geometry.compute(128, max_inodes=16, with_dedup=True,
                           fact_prefix_bits=N_BITS)
    Superblock(dev).format(geo)
    return FACT(dev, geo)


def mkfp(prefix: int, salt: int = 0) -> bytes:
    """A 20-byte fingerprint with a chosen N_BITS prefix."""
    body = hashlib.sha1(salt.to_bytes(8, "little")).digest()
    head = int.from_bytes(body[:8], "big")
    head = (head & ((1 << (64 - N_BITS)) - 1)) | (prefix << (64 - N_BITS))
    return head.to_bytes(8, "big") + body[8:]


BLOCK0 = 100  # within the data region of a 128-page device


class TestLookupInsert:
    def test_miss_on_empty_table(self, fact):
        res = fact.lookup(mkfp(3))
        assert res.found is None
        assert res.steps == 1  # one DAA read

    def test_insert_then_lookup_daa_hit(self, fact):
        fp = mkfp(3)
        idx = fact.insert(fp, BLOCK0)
        assert idx == 3  # lands in the DAA slot named by the prefix
        res = fact.lookup(fp)
        assert res.found is not None
        assert res.found.block == BLOCK0
        assert res.found.update_count == 1
        assert res.found.refcount == 0
        assert res.steps == 1
        assert fact.stats["daa_hits"] == 1

    def test_collision_goes_to_iaa(self, fact):
        fp1, fp2 = mkfp(5, 1), mkfp(5, 2)
        assert fp1 != fp2
        i1 = fact.insert(fp1, 100)
        i2 = fact.insert(fp2, 101)
        assert i1 == 5
        assert i2 >= fact.daa_size
        r2 = fact.lookup(fp2)
        assert r2.found.idx == i2
        assert r2.steps == 2  # head + one chain hop

    def test_chain_of_four(self, fact):
        fps = [mkfp(9, s) for s in range(4)]
        idxs = [fact.insert(fp, 100 + s) for s, fp in enumerate(fps)]
        for s, fp in enumerate(fps):
            res = fact.lookup(fp)
            assert res.found.idx == idxs[s]
            assert res.steps == s + 1
        fact.check_chains()

    def test_insert_duplicate_fp_rejected(self, fact):
        fp = mkfp(1)
        fact.insert(fp, 100)
        with pytest.raises(ValueError):
            fact.insert(fp, 101)

    def test_insert_block_zero_rejected(self, fact):
        with pytest.raises(ValueError):
            fact.insert(mkfp(0), 0)

    def test_iaa_exhaustion_raises(self, fact):
        # One DAA head + fill the whole IAA with one colliding prefix.
        for s in range(fact.daa_size + 1):
            fact.insert(mkfp(2, s), 1 + s)
        with pytest.raises(FactFull):
            fact.insert(mkfp(2, 999), 999)

    def test_lookup_with_empty_head_but_chain(self, fact):
        """A removed DAA head keeps the chain reachable via its next."""
        fp1, fp2 = mkfp(4, 1), mkfp(4, 2)
        i1 = fact.insert(fp1, 100)
        i2 = fact.insert(fp2, 101)
        fact.inc_uc(i1)
        fact.commit_uc(i1)
        assert fact.dec_rfc(i1) == 0
        fact.remove(i1)
        res = fact.lookup(fp2)
        assert res.found.idx == i2
        # The empty head is reusable for a fresh insert.
        fp3 = mkfp(4, 3)
        i3 = fact.insert(fp3, 102)
        assert i3 == 4
        assert fact.lookup(fp2).found.idx == i2
        fact.check_chains()


class TestCounts:
    def test_uc_rfc_lifecycle(self, fact):
        idx = fact.insert(mkfp(6), 100)
        assert fact.read_entry(idx).update_count == 1
        fact.inc_uc(idx)
        ent = fact.read_entry(idx)
        assert ent.update_count == 2
        assert fact.commit_uc(idx)
        assert fact.commit_uc(idx)
        ent = fact.read_entry(idx)
        assert ent.update_count == 0
        assert ent.refcount == 2

    def test_commit_uc_idempotent_at_zero(self, fact):
        idx = fact.insert(mkfp(6), 100)
        assert fact.commit_uc(idx)
        assert not fact.commit_uc(idx)  # UC exhausted -> no-op
        assert fact.read_entry(idx).refcount == 1

    def test_discard_uc(self, fact):
        idx = fact.insert(mkfp(6), 100)
        fact.inc_uc(idx)
        fact.discard_uc(idx)
        ent = fact.read_entry(idx)
        assert ent.update_count == 0
        assert ent.refcount == 0

    def test_dec_rfc_underflow_raises(self, fact):
        idx = fact.insert(mkfp(6), 100)
        with pytest.raises(FactCorruption):
            fact.dec_rfc(idx)

    def test_counts_share_one_atomic_word(self, fact):
        """UC-1/RFC+1 must be a single 8-byte store (the paper's core
        consistency trick) — verify via the device write counter."""
        idx = fact.insert(mkfp(6), 100)
        before = fact.dev.stats.writes
        fact.commit_uc(idx)
        assert fact.dev.stats.writes == before + 1


class TestDeletePointers:
    def test_entry_for_block_two_reads(self, fact):
        idx = fact.insert(mkfp(8), 77)
        before = fact.dev.stats.reads
        ent = fact.entry_for_block(77)
        assert fact.dev.stats.reads == before + 2  # §IV-C: exactly two
        assert ent.idx == idx
        assert ent.block == 77

    def test_entry_for_block_miss(self, fact):
        assert fact.entry_for_block(50) is None

    def test_delete_column_independent_of_slot_entry(self, fact):
        """Slot B's delete pointer survives slot B's own entry churn."""
        # Entry whose block is 10 -> delete pointer lives in slot 10.
        idx_a = fact.insert(mkfp(12), 10)
        # Now occupy slot 10 itself with an entry (prefix 10).
        idx_b = fact.insert(mkfp(10), 90)
        assert idx_b == 10
        assert fact.entry_for_block(10).idx == idx_a  # still resolves
        # Remove the entry living in slot 10; mapping for block 10 stays.
        fact.commit_uc(idx_b)
        assert fact.dec_rfc(idx_b) == 0
        fact.remove(idx_b)
        assert fact.entry_for_block(10).idx == idx_a
        assert fact.entry_for_block(90) is None

    def test_remove_clears_own_block_mapping(self, fact):
        idx = fact.insert(mkfp(3), 55)
        fact.commit_uc(idx)
        assert fact.dec_rfc(idx) == 0
        fact.remove(idx)
        assert fact.entry_for_block(55) is None


class TestRemove:
    def _mk_chain(self, fact, prefix, n):
        idxs = []
        for s in range(n):
            idx = fact.insert(mkfp(prefix, s), 60 + s)
            fact.commit_uc(idx)
            idxs.append(idx)
        return idxs

    def test_remove_middle_of_chain(self, fact):
        idxs = self._mk_chain(fact, 20, 4)
        assert fact.dec_rfc(idxs[2]) == 0
        fact.remove(idxs[2])
        fact.check_chains()
        assert fact.lookup(mkfp(20, 1)).found is not None
        assert fact.lookup(mkfp(20, 3)).found is not None
        assert fact.lookup(mkfp(20, 2)).found is None

    def test_remove_tail_of_chain(self, fact):
        idxs = self._mk_chain(fact, 21, 3)
        assert fact.dec_rfc(idxs[-1]) == 0
        fact.remove(idxs[-1])
        fact.check_chains()
        assert fact.lookup(mkfp(21, 2)).found is None

    def test_removed_iaa_slot_is_reusable(self, fact):
        idxs = self._mk_chain(fact, 22, 2)
        assert fact.dec_rfc(idxs[1]) == 0
        fact.remove(idxs[1])
        new_idx = fact.insert(mkfp(23, 0), 95)
        assert new_idx == 23  # DAA
        col = fact.insert(mkfp(23, 1), 96)
        assert col == idxs[1]  # the freed IAA slot comes back
        fact.check_chains()

    def test_remove_invalid_rejected(self, fact):
        with pytest.raises(ValueError):
            fact.remove(40)


class TestOccupancyAndScan:
    def test_occupancy_counts(self, fact):
        fact.insert(mkfp(1, 0), 100)
        fact.insert(mkfp(1, 1), 101)
        fact.insert(mkfp(2, 0), 102)
        occ = fact.occupancy()
        assert occ["daa_used"] == 2
        assert occ["iaa_used"] == 1
        assert occ["entries"] == 3
        assert occ["max_chain"] == 2
        assert occ["bytes"] == fact.total * 64

    def test_live_entries(self, fact):
        i1 = fact.insert(mkfp(1), 100)
        i2 = fact.insert(mkfp(2), 101)
        live = fact.live_entries()
        assert set(live) == {i1, i2}
        assert live[i1].block == 100


class TestCheckChains:
    def test_detects_bad_prev(self, fact):
        fact.insert(mkfp(30, 0), 100)
        i2 = fact.insert(mkfp(30, 1), 101)
        fact._write_u64(i2, 16, 99)  # corrupt prev
        with pytest.raises(FactCorruption):
            fact.check_chains()

    def test_detects_unreachable_iaa_entry(self, fact):
        fact.insert(mkfp(30, 0), 100)
        i2 = fact.insert(mkfp(30, 1), 101)
        # Sever the link.
        fact._write_u64(30, 24, 0)
        with pytest.raises(FactCorruption):
            fact.check_chains()

    def test_detects_cycle(self, fact):
        fact.insert(mkfp(30, 0), 100)
        i2 = fact.insert(mkfp(30, 1), 101)
        fact._write_u64(i2, 24, i2 + 1)  # next -> itself
        with pytest.raises(FactCorruption):
            fact.check_chains()

    def test_detects_dangling_delete_pointer(self, fact):
        idx = fact.insert(mkfp(3), 70)
        fact.clear_delete(70)
        with pytest.raises(FactCorruption):
            fact.check_chains()


class TestCrashSafety:
    def test_insert_is_published_by_link(self, fact):
        """Crash between slot write and chain link leaves an orphan the
        structural recovery zeroes."""
        fact.insert(mkfp(40, 0), 100)
        dev = fact.dev
        # Manually stage a half-insert: entry + delete ptr, no link.
        new_idx = fact._iaa_free.pop()
        fact._write_fields(new_idx, 1 << 32, 101, 40, -1, mkfp(40, 1))
        fact.set_delete(101, new_idx)
        dev.crash()
        dev.recover_view()
        rep = fact.structural_recover()
        assert rep["orphans_zeroed"] == 1
        assert fact.entry_for_block(101) is None
        fact.check_chains()

    def test_structural_recover_rebuilds_freelist(self, fact):
        i1 = fact.insert(mkfp(40, 0), 100)
        i2 = fact.insert(mkfp(40, 1), 101)
        free_before = len(fact._iaa_free)
        fact._iaa_free = []  # simulate lost DRAM state
        fact.structural_recover()
        assert len(fact._iaa_free) == free_before

    def test_counts_survive_crash_after_persist(self, fact):
        idx = fact.insert(mkfp(7), 100)
        fact.commit_uc(idx)
        fact.dev.crash()
        fact.dev.recover_view()
        ent = fact.read_entry(idx)
        assert ent.refcount == 1
        assert ent.update_count == 0
