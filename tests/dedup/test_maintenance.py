"""Budgeted FACT maintenance and recovery-path regressions:

* scrub returns reclaimed pages to their *home* CPU's free list (the
  static-partition owner), not CPU 0;
* budgeted scrub / deep_verify sweeps resume from a cursor and cover
  the whole table across calls;
* a clean remount rebuilds (or checkpoint-restores) the volatile IAA
  free list, so post-remount dedup cannot hand out occupied slots.
"""

import math

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock

pytestmark = pytest.mark.recovery


def page_of(i: int) -> bytes:
    return bytes([i % 256]) * PAGE_SIZE


def make_fs(pages=2048, inodes=64, cpus=1, **kw):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=inodes, cpus=cpus, **kw)


def cpu_holding(alloc, page):
    for cpu, lst in enumerate(alloc.free_extents()):
        for ext in lst:
            if ext.start <= page < ext.start + ext.count:
                return cpu
    return None


def leak_pages(fs, nfiles: int) -> dict[int, int]:
    """Forge the §V-C2 over-increment leak on every entry: returns
    {fact idx: leaked block}."""
    for i in range(nfiles):
        ino = fs.create(f"/leak{i}")
        fs.write(ino, 0, page_of(i + 1), cpu=i % fs.cpus)
    fs.daemon.drain()
    for idx in list(fs.fact.live_entries()):
        fs.fact.inc_uc(idx)
        fs.fact.commit_uc(idx)  # RFC = 2 with one real reference
    for i in range(nfiles):
        fs.unlink(f"/leak{i}")  # dec to 1 -> page leaked, entry alive
    return {idx: ent.block
            for idx, ent in fs.fact.live_entries().items()}


class TestScrubHomeCpu:
    def test_scrub_frees_pages_to_home_cpu(self):
        fs = make_fs(cpus=4)
        leaked = leak_pages(fs, 8)
        assert leaked
        homes = {b: fs.allocator.home_cpu(b) for b in leaked.values()}
        # The leak spans partitions, so a free-everything-to-CPU-0 bug
        # is observable.
        assert len(set(homes.values())) > 1
        rep = fs.scrub()
        assert rep["pages_freed"] == len(leaked)
        for block, home in homes.items():
            assert cpu_holding(fs.allocator, block) == home, \
                f"page {block} freed to the wrong CPU list"
        check_fs_invariants(fs)

    def test_free_lists_stay_balanced_after_scrub(self):
        fs = make_fs(cpus=4)
        before = [sum(e.count for e in lst)
                  for lst in fs.allocator.free_extents()]
        leaked = leak_pages(fs, 8)
        fs.scrub()
        after = [sum(e.count for e in lst)
                 for lst in fs.allocator.free_extents()]
        # Everything allocated was freed back (minus a couple of pages
        # of directory-log growth); no single CPU's list may have
        # absorbed the whole reclaim, as the free-to-CPU-0 bug did.
        assert sum(before) - sum(after) <= 4
        assert max(abs(a - b) for a, b in zip(after, before)) <= 3, \
            f"per-CPU free lists skewed: {before} -> {after}"
        assert len(leaked) == 8


class TestBudgetedMaintenance:
    def _populated(self, n=6):
        fs = make_fs()
        for i in range(n):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(i + 1))
        fs.daemon.drain()
        return fs

    def test_budgeted_scrub_sweeps_incrementally(self):
        fs = self._populated()
        total = len(fs.fact.live_entries())
        examined = rounds = 0
        while True:
            rep = fs.scrub(budget=2)
            examined += rep["examined"]
            rounds += 1
            if rep["done"]:
                break
        assert examined == total
        assert rounds == math.ceil(total / 2)
        assert fs._scrub_cursor == 0  # sweep completed -> cursor reset

    def test_budgeted_deep_verify_resumes(self):
        fs = self._populated()
        total = len(fs.fact.live_entries())
        rep1 = fs.deep_verify(budget=total - 1)
        assert not rep1["done"]
        assert fs._verify_cursor == rep1["next_cursor"] > 0
        rep2 = fs.deep_verify(budget=total)
        assert rep2["done"] and rep2["clean"]
        assert rep1["checked"] + rep2["checked"] == total
        assert fs._verify_cursor == 0

    def test_unbudgeted_call_sweeps_everything(self):
        fs = self._populated()
        rep = fs.scrub()
        assert rep["done"]
        assert rep["examined"] == len(fs.fact.live_entries())


class TestIaaFreeListRemount:
    def _distinct_fs(self):
        # A 64-page device gets 6 prefix bits -> 64 DAA buckets; 14
        # distinct pages deterministically collide into the IAA.
        fs = make_fs(pages=64, inodes=32)
        for i in range(14):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(i + 1))
        fs.daemon.drain()
        return fs

    @pytest.mark.parametrize("use_checkpoint", [True, False])
    def test_clean_remount_restores_iaa_free_list(self, tmp_path,
                                                  use_checkpoint):
        fs = self._distinct_fs()
        assert fs.fact.occupancy()["iaa_used"] > 0
        occupied = {idx for idx in fs.fact.live_entries()
                    if idx >= fs.fact.daa_size}
        fs.unmount()
        path = tmp_path / "iaa.img"
        fs.dev.save_image(path)
        dev = PMDevice.load_image(path, clock=SimClock())
        fs2 = DeNovaFS.mount(dev, use_checkpoint=use_checkpoint)
        # The pre-fix free list optimistically contained *every* IAA
        # slot; handing out an occupied one corrupts the table.
        assert set(fs2.fact._iaa_free).isdisjoint(occupied)
        for j in range(3):
            ino = fs2.create(f"/g{j}")
            fs2.write(ino, 0, page_of(100 + j))
        fs2.daemon.drain()
        fs2.fact.check_chains()
        check_fs_invariants(fs2)
        # All pre-remount entries survived the new inserts.
        assert occupied <= set(fs2.fact.live_entries())
