"""Unit tests for chunking and fingerprinting."""

import hashlib

import pytest

from repro.dedup.fingerprint import (
    CHUNK_SIZE,
    Fingerprinter,
    chunk_pages,
    fp_prefix,
)
from repro.pm import SimClock
from repro.pm.latency import CpuModel


def make_fp():
    clock = SimClock()
    return Fingerprinter(CpuModel(), clock), clock


class TestChunking:
    def test_exact_multiple(self):
        chunks = list(chunk_pages(b"a" * (3 * CHUNK_SIZE)))
        assert len(chunks) == 3
        assert all(len(c) == CHUNK_SIZE for c in chunks)

    def test_tail_padded_with_zeros(self):
        chunks = list(chunk_pages(b"x" * (CHUNK_SIZE + 10)))
        assert len(chunks) == 2
        assert chunks[1][:10] == b"x" * 10
        assert chunks[1][10:] == bytes(CHUNK_SIZE - 10)

    def test_empty_input(self):
        assert list(chunk_pages(b"")) == []


class TestStrong:
    def test_matches_real_sha1(self):
        fp, _ = make_fp()
        data = b"denova" * 100
        assert fp.strong(data) == hashlib.sha1(data).digest()

    def test_identical_content_same_fp(self):
        fp, _ = make_fp()
        assert fp.strong(b"A" * 4096) == fp.strong(b"A" * 4096)

    def test_cost_charged_per_byte(self):
        fp, clock = make_fp()
        fp.strong(b"a" * 4096)
        t1 = clock.now_ns
        fp.strong(b"a" * 8192)
        t2 = clock.now_ns - t1
        assert t2 > t1 * 1.5  # roughly linear in size

    def test_table4_regime_11_8us_per_4kb(self):
        fp, clock = make_fp()
        fp.strong(b"z" * 4096)
        assert 10_000 <= clock.now_ns <= 14_000

    def test_counters(self):
        fp, _ = make_fp()
        fp.strong(b"a" * 4096)
        fp.strong(b"b" * 4096)
        fp.weak(b"c" * 4096)
        assert fp.strong_count == 2
        assert fp.strong_bytes == 8192
        assert fp.weak_count == 1
        assert fp.strong_time_ns > 20_000


class TestWeak:
    def test_weak_is_crc32(self):
        import zlib

        fp, _ = make_fp()
        data = b"weak" * 1000
        assert fp.weak(data) == zlib.crc32(data) & 0xFFFFFFFF

    def test_weak_much_cheaper_than_strong(self):
        fp, clock = make_fp()
        fp.weak(b"a" * 4096)
        weak_t = clock.now_ns
        fp.strong(b"a" * 4096)
        strong_t = clock.now_ns - weak_t
        assert strong_t > 5 * weak_t  # Eq. 4: T_fw << T_f


class TestPrefix:
    def test_prefix_uses_top_bits(self):
        fp = bytes([0b10110000]) + bytes(19)
        assert fp_prefix(fp, 4) == 0b1011
        assert fp_prefix(fp, 8) == 0b10110000
        assert fp_prefix(fp, 1) == 1

    def test_prefix_range(self):
        fp = b"\xff" * 20
        assert fp_prefix(fp, 10) == 2**10 - 1

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            fp_prefix(b"\x00" * 20, 0)
        with pytest.raises(ValueError):
            fp_prefix(b"\x00" * 20, 65)

    def test_compare_charges_cost(self):
        fp, clock = make_fp()
        t = clock.now_ns
        assert fp.compare(b"a" * 20, b"a" * 20)
        assert not fp.compare(b"a" * 20, b"b" * 20)
        assert clock.now_ns > t
