"""Unit tests for the Deduplication Work Queue."""

from repro.dedup.dwq import DWQ, DWQNode
from repro.nova.layout import Geometry, PAGE_SIZE, Superblock
from repro.pm import DRAM, PMDevice, SimClock
from repro.pm.latency import CpuModel


def make_dwq():
    clock = SimClock()
    return DWQ(CpuModel(), clock), clock


def make_dev_geo():
    dev = PMDevice(256 * PAGE_SIZE, model=DRAM, clock=SimClock())
    geo = Geometry.compute(256, max_inodes=32, dwq_save_pages=2)
    Superblock(dev).format(geo)
    return dev, geo


class TestQueueBasics:
    def test_fifo_order(self):
        q, _ = make_dwq()
        for i in range(5):
            q.enqueue(DWQNode(ino=i, entry_addr=i * 64))
        got = [q.dequeue().ino for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_dequeue_empty_returns_none(self):
        q, _ = make_dwq()
        assert q.dequeue() is None

    def test_counters_and_peak(self):
        q, _ = make_dwq()
        for i in range(4):
            q.enqueue(DWQNode(ino=1, entry_addr=i))
        q.dequeue()
        q.enqueue(DWQNode(ino=1, entry_addr=9))
        assert q.enqueued == 5
        assert q.dequeued == 1
        assert q.peak_length == 4
        assert len(q) == 4

    def test_peek_addrs(self):
        q, _ = make_dwq()
        q.enqueue(DWQNode(ino=1, entry_addr=100))
        q.enqueue(DWQNode(ino=2, entry_addr=200))
        assert q.peek_addrs() == {100, 200}

    def test_enqueue_charges_dram_touch_only(self):
        q, clock = make_dwq()
        t0 = clock.now_ns
        q.enqueue(DWQNode(ino=1, entry_addr=0))
        cost = clock.now_ns - t0
        # §IV-B1: enqueue is tiny next to any NVM access (>= 90 ns write).
        assert 0 < cost < 50


class TestLingering:
    def test_lingering_time_recorded(self):
        q, clock = make_dwq()
        q.enqueue(DWQNode(ino=1, entry_addr=0))
        clock.advance(1000.0)
        q.enqueue(DWQNode(ino=1, entry_addr=64))
        clock.advance(500.0)
        q.dequeue()
        q.dequeue()
        assert len(q.lingering_ns) == 2
        assert q.lingering_ns[0] >= 1500.0
        assert q.lingering_ns[1] >= 500.0
        assert q.lingering_ns[0] > q.lingering_ns[1]

    def test_percentile(self):
        q, clock = make_dwq()
        for i in range(10):
            q.enqueue(DWQNode(ino=1, entry_addr=i))
            clock.advance(100.0)
        while q.dequeue():
            pass
        p90 = q.lingering_percentile(0.9)
        p10 = q.lingering_percentile(0.1)
        assert p90 > p10

    def test_percentile_empty(self):
        q, _ = make_dwq()
        assert q.lingering_percentile(0.9) == 0.0


class TestPersistence:
    def test_save_restore_roundtrip(self):
        dev, geo = make_dev_geo()
        q = DWQ(CpuModel(), dev.clock)
        for i in range(7):
            q.enqueue(DWQNode(ino=10 + i, entry_addr=4096 + 64 * i))
        assert q.save(dev, geo) == 7
        q2 = DWQ(CpuModel(), dev.clock)
        assert q2.restore(dev, geo) == 7
        nodes = [q2.dequeue() for _ in range(7)]
        assert [n.ino for n in nodes] == list(range(10, 17))
        assert [n.entry_addr for n in nodes] == [4096 + 64 * i
                                                 for i in range(7)]

    def test_restore_clears_saved_count(self):
        dev, geo = make_dev_geo()
        q = DWQ(CpuModel(), dev.clock)
        q.enqueue(DWQNode(ino=1, entry_addr=64))
        q.save(dev, geo)
        q2 = DWQ(CpuModel(), dev.clock)
        q2.restore(dev, geo)
        q3 = DWQ(CpuModel(), dev.clock)
        assert q3.restore(dev, geo) == 0

    def test_save_empty_queue(self):
        dev, geo = make_dev_geo()
        q = DWQ(CpuModel(), dev.clock)
        assert q.save(dev, geo) == 0
        assert Superblock(dev).dwq_saved_count == 0

    def test_save_overflow_uses_sentinel(self):
        dev, geo = make_dev_geo()
        q = DWQ(CpuModel(), dev.clock)
        cap = q.capacity_on(geo)
        for i in range(cap + 10):
            q.enqueue(DWQNode(ino=1, entry_addr=i * 64))
        assert q.save(dev, geo) == 0  # nothing truncated silently
        q2 = DWQ(CpuModel(), dev.clock)
        assert q2.restore(dev, geo) == -1  # caller must flag-scan
        # The sentinel is one-shot.
        q3 = DWQ(CpuModel(), dev.clock)
        assert q3.restore(dev, geo) == 0

    def test_overflowed_clean_unmount_loses_no_dedup_work(self):
        """End-to-end: backlog > save area at clean unmount, then mount:
        every entry still reaches the daemon."""
        from repro.dedup import DeNovaFS
        from repro.nova.layout import PAGE_SIZE as PG

        dev = PMDevice(4096 * PG, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=512, dwq_save_pages=1)
        cap = fs.dwq.capacity_on(fs.geo)
        n = cap + 40
        for i in range(n):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, bytes([7]) * PG)
        assert len(fs.dwq) == n
        fs.unmount()
        fs2 = DeNovaFS.mount(dev)
        assert len(fs2.dwq) == n  # rebuilt from flags, nothing lost
        fs2.daemon.drain()
        assert fs2.space_stats()["physical_pages"] == 1

    def test_saved_queue_survives_crash(self):
        dev, geo = make_dev_geo()
        q = DWQ(CpuModel(), dev.clock)
        q.enqueue(DWQNode(ino=5, entry_addr=8192))
        q.save(dev, geo)
        dev.crash()
        dev.recover_view()
        q2 = DWQ(CpuModel(), dev.clock)
        assert q2.restore(dev, geo) == 1
        assert q2.dequeue().ino == 5
