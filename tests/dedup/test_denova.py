"""Integration tests for DeNovaFS (offline dedup filesystem)."""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(pages=2048, **kw):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=kw.pop("max_inodes", 256), **kw)


def page_of(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * PAGE_SIZE


class TestWritePathIntegration:
    def test_writes_enqueue_dwq_nodes(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, b"x" * 100)
        fs.write(ino, PAGE_SIZE, b"y" * 100)
        assert len(fs.dwq) == 2
        assert fs.dwq.enqueued == 2

    def test_mkfs_requires_fact_region(self):
        from repro.nova import NovaFS
        from repro.nova.layout import Geometry, Superblock

        dev = PMDevice(512 * PAGE_SIZE, model=DRAM, clock=SimClock())
        geo = Geometry.compute(512, max_inodes=64, with_dedup=False)
        Superblock(dev).format(geo)
        with pytest.raises(ValueError, match="FACT"):
            DeNovaFS(dev, geo)

    def test_foreground_write_does_no_fingerprinting(self):
        """The offline property: the write path never hashes."""
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, page_of(1) * 8)
        assert fs.fingerprinter.strong_count == 0
        fs.daemon.drain()
        assert fs.fingerprinter.strong_count == 8


class TestRFCReclaim:
    def test_shared_page_survives_one_owner_unlink(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(9))
        fs.write(b, 0, page_of(9))
        fs.daemon.drain()
        fs.unlink("/a")
        assert fs.read(b, 0, PAGE_SIZE) == page_of(9)
        assert fs.dedup_counters["shared_page_keeps"] == 1
        check_fs_invariants(fs)

    def test_last_owner_unlink_frees_page_and_entry(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(9))
        fs.write(b, 0, page_of(9))
        fs.daemon.drain()
        used = fs.statfs()["used_pages"]
        fs.unlink("/a")
        fs.unlink("/b")
        assert fs.statfs()["used_pages"] < used
        assert fs.fact.live_entries() == {}
        assert fs.dedup_counters["fact_entry_removes"] == 1
        check_fs_invariants(fs)

    def test_overwrite_of_shared_page(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(9) * 2)
        fs.write(b, 0, page_of(9) * 2)
        fs.daemon.drain()
        fs.write(a, 0, page_of(5) * 2)
        assert fs.read(a, 0, 2 * PAGE_SIZE) == page_of(5) * 2
        assert fs.read(b, 0, 2 * PAGE_SIZE) == page_of(9) * 2
        check_fs_invariants(fs)

    def test_overwrite_of_intra_file_duplicates(self):
        """Fuzzer-found: a file whose own pages deduped onto one
        canonical block must drop *every* reference on overwrite.

        Two of the three written pages share an image, so after the
        drain two radix slots point at one block with RFC=2.  The
        overwrite displaces that block twice; collapsing the duplicates
        left the entry live at RFC=1 with no references, and a remount's
        free-list rebuild then handed its block to new data while the
        stale entry still claimed it.
        """
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(9) + page_of(9) + page_of(4))
        fs.daemon.drain()
        fs.write(a, 0, page_of(5) * 3)
        assert fs.read(a, 0, 3 * PAGE_SIZE) == page_of(5) * 3
        fs.daemon.drain()
        blocks = {e.block for e in fs.fact.live_entries().values()}
        assert len(blocks) == len(fs.fact.live_entries())
        check_fs_invariants(fs)

    def test_unlink_of_intra_file_duplicates_releases_entry(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(9) * 3)
        fs.daemon.drain()
        fs.unlink("/a")
        assert fs.fact.live_entries() == {}
        check_fs_invariants(fs)

    def test_truncate_of_shared_pages(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(9) * 4)
        fs.write(b, 0, page_of(9) * 4)
        fs.daemon.drain()
        fs.truncate(a, 0)
        assert fs.read(b, 0, 4 * PAGE_SIZE) == page_of(9) * 4
        check_fs_invariants(fs)


class TestUnmountRemount:
    def test_clean_unmount_saves_dwq(self):
        fs = make_fs()
        for i in range(5):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(i))
        assert len(fs.dwq) == 5
        fs.unmount()
        fs2 = DeNovaFS.mount(fs.dev)
        assert len(fs2.dwq) == 5
        assert fs2.last_recovery.extra["dwq_restored"] == 5
        fs2.daemon.drain()
        assert fs2.daemon.stats.nodes_processed == 5
        check_fs_invariants(fs2)

    def test_remount_preserves_dedup_state(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(1) * 2)
        fs.write(b, 0, page_of(1) * 2)
        fs.daemon.drain()
        saved = fs.space_stats()["pages_saved"]
        fs.unmount()
        fs2 = DeNovaFS.mount(fs.dev)
        assert fs2.space_stats()["pages_saved"] == saved
        assert fs2.read(fs2.lookup("/a"), 0, 2 * PAGE_SIZE) == page_of(1) * 2
        check_fs_invariants(fs2)

    def test_dedup_after_remount_uses_existing_entries(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(7))
        fs.daemon.drain()
        fs.unmount()
        fs2 = DeNovaFS.mount(fs.dev)
        b = fs2.create("/b")
        fs2.write(b, 0, page_of(7))
        fs2.daemon.drain()
        assert fs2.space_stats()["physical_pages"] == 1
        check_fs_invariants(fs2)


class TestScrub:
    def test_scrub_noop_on_consistent_fs(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(1) * 2)
        fs.daemon.drain()
        rep = fs.scrub()
        assert rep == {"entries_removed": 0, "pages_freed": 0,
                       "overcounted_remaining": 0, "examined": 1,
                       "next_cursor": 0, "done": True}

    def test_scrub_reclaims_leaked_page(self):
        """Simulate the §V-C2 over-increment leak and scrub it away."""
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(1))
        fs.daemon.drain()
        (idx, ent), = fs.fact.live_entries().items()
        fs.fact.inc_uc(idx)        # forge an over-increment
        fs.fact.commit_uc(idx)     # RFC = 2 with only one reference
        fs.unlink("/a")            # dec to 1 -> page leaked, entry alive
        assert fs.fact.live_entries()
        rep = fs.scrub()
        assert rep["entries_removed"] == 1
        assert rep["pages_freed"] == 1
        assert fs.fact.live_entries() == {}
        check_fs_invariants(fs)

    def test_scrub_leaves_overcounted_live_entries(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(1))
        fs.daemon.drain()
        (idx, _), = fs.fact.live_entries().items()
        fs.fact.inc_uc(idx)
        fs.fact.commit_uc(idx)  # RFC 2, actual 1
        rep = fs.scrub()
        assert rep["overcounted_remaining"] == 1
        assert fs.read(a, 0, PAGE_SIZE) == page_of(1)


class TestSpaceStats:
    def test_dedup_ratio_scales_with_alpha(self):
        def run(n_dup, n_total=20):
            fs = make_fs()
            for i in range(n_total):
                ino = fs.create(f"/f{i}")
                tag = 250 if i < n_dup else i
                fs.write(ino, 0, page_of(tag))
            fs.daemon.drain()
            return fs.space_stats()["space_saving"]

        s0 = run(0)
        s50 = run(10)
        s90 = run(18)
        assert s0 == 0.0
        assert 0.35 <= s50 <= 0.5
        assert s90 > s50

    def test_fact_occupancy_in_space_stats(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(1) * 3)
        fs.daemon.drain()
        st = fs.space_stats()
        assert st["fact"]["entries"] == 1
        assert st["dwq_backlog"] == 0
