"""Property tests for IAA chain structure under random interleavings.

``random.Random``-driven sequences of insert / remove / reorder —
including crashes injected mid-reorder at every persistence event —
must preserve the chain structural invariants the recovery path relies
on:

* **doubly-linked integrity** — following ``next`` from the DAA head
  and ``prev`` from the tail visit the same slots in opposite order;
* **acyclicity** — no walk revisits a slot (``check_chains`` raises);
* **prefix-homogeneity** — every entry in a chain shares the DAA head's
  fingerprint prefix;
* **lookup completeness** — every fingerprint a shadow dict says is
  live is found, with the block the shadow recorded; removed ones miss.
"""

import hashlib
import random

import pytest

from repro.dedup.fact import _OFF_NEXT, _OFF_PREV, FACT
from repro.dedup.reorder import chain_order, reorder_chain
from repro.nova.layout import PAGE_SIZE, Geometry, Superblock
from repro.pm import DRAM, PMDevice, SimClock
from repro.pm.device import CrashRequested

N_BITS = 8   # minimum legal for a 256-page device (delete pointers)
PREFIXES = (3, 9, 42, 77)  # inserts restricted here to force long chains


def make_fact():
    dev = PMDevice(256 * PAGE_SIZE, model=DRAM, clock=SimClock())
    geo = Geometry.compute(256, max_inodes=16, with_dedup=True,
                           fact_prefix_bits=N_BITS)
    Superblock(dev).format(geo)
    return FACT(dev, geo)


def mkfp(prefix: int, salt: int) -> bytes:
    body = hashlib.sha1(f"{prefix}:{salt}".encode()).digest()
    head = int.from_bytes(body[:8], "big")
    head = (head & ((1 << (64 - N_BITS)) - 1)) | (prefix << (64 - N_BITS))
    return head.to_bytes(8, "big") + body[8:]


def check_structure(fact, shadow):
    """All four chain properties against the shadow fp -> block dict."""
    fact.check_chains()  # integrity + acyclicity + UC/flag sanity
    live = fact.live_entries()
    assert len(live) == len(shadow)

    seen = set()
    for head in range(fact.daa_size):
        forward = chain_order(fact, head)
        if not forward:
            continue
        # Prefix homogeneity: every live chain member hashes to this
        # head (a removed DAA head stays in the walk as a zeroed,
        # invalid placeholder that keeps the chain reachable).
        for ent in fact.chain(head, silent=True):
            if not ent.valid:
                continue
            assert fact.head_of(ent.fp) == head, \
                f"FACT[{ent.idx}] prefix-foreign in chain {head}"
        # Doubly-linked integrity: walk prev links back from the tail.
        backward = []
        idx = forward[-1]
        while idx != head:
            backward.append(idx)
            idx = fact._read_u64(idx, _OFF_PREV) - 1
            assert idx >= 0, "broken prev link"
            assert len(backward) <= len(forward), "prev-walk cycle"
        head_ent = fact.read_entry(head)
        if head_ent.valid:
            backward.append(head)
        assert backward == list(reversed(
            [i for i in forward if fact.read_entry(i).valid])), \
            f"chain {head}: prev-walk disagrees with next-walk"
        seen.update(i for i in forward if fact.read_entry(i).valid)

    assert seen == set(live), "live entries unreachable from any chain"
    for fp, block in shadow.items():
        res = fact.lookup(fp)
        assert res.found is not None, "live fingerprint not found"
        assert res.found.block == block


def random_interleaving(fact, rng, steps, shadow, salt_counter,
                        reorder_ok=True):
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.55 or not shadow:
            prefix = rng.choice(PREFIXES)
            salt = next(salt_counter)
            fp = mkfp(prefix, salt)
            block = 100 + salt
            idx = fact.insert(fp, block)
            # Give entries distinct RFCs so reorders actually permute.
            for _ in range(rng.randrange(4)):
                fact.inc_uc(idx)
                fact.commit_uc(idx)
            fact.discard_uc(idx)
            shadow[fp] = block
        elif roll < 0.85:
            fp = rng.choice(sorted(shadow))
            ent = fact.lookup(fp).found
            fact._write_u64(ent.idx, 0, 0)  # force counts to 0
            fact.remove(ent.idx)
            del shadow[fp]
        elif reorder_ok:
            reorder_chain(fact, rng.choice(PREFIXES))


@pytest.mark.parametrize("seed", range(8))
def test_random_interleavings_preserve_structure(seed):
    fact = make_fact()
    rng = random.Random(seed)
    shadow = {}
    salts = iter(range(10 ** 6))
    for _round in range(6):
        random_interleaving(fact, rng, 25, shadow, salts)
        check_structure(fact, shadow)


@pytest.mark.parametrize("seed", range(4))
def test_structure_survives_crash_and_recovery(seed):
    fact = make_fact()
    rng = random.Random(1000 + seed)
    shadow = {}
    salts = iter(range(10 ** 6))
    random_interleaving(fact, rng, 60, shadow, salts)
    fact.dev.crash()          # every FACT mutation persists eagerly,
    fact.dev.recover_view()   # so a clean crash loses nothing
    fact.structural_recover()
    check_structure(fact, shadow)


def test_crash_mid_reorder_at_every_persist_event():
    """Fig. 7: a crash at ANY step of a reorder must recover to a chain
    with the same member set and full structural integrity."""
    prefix = 3

    def build():
        fact = make_fact()
        shadow = {}
        for salt in range(6):
            fp = mkfp(prefix, salt)
            idx = fact.insert(fp, 100 + salt)
            for _ in range(salt % 4):     # distinct RFCs force a permute
                fact.inc_uc(idx)
                fact.commit_uc(idx)
            shadow[fp] = 100 + salt
        return fact, shadow

    # Count persist events inside the reorder alone.
    fact, shadow = build()
    counter = [0]
    fact.dev.hooks.on_persist = lambda n, d: counter.__setitem__(
        0, counter[0] + 1)
    assert reorder_chain(fact, prefix)
    fact.dev.hooks.on_persist = None
    total = counter[0]
    assert total > 0

    for point in range(1, total + 1):
        fact, shadow = build()
        count = [0]

        def trip(_n, _d):
            count[0] += 1
            if count[0] == point:
                raise CrashRequested("reorder", point)

        fact.dev.hooks.on_persist = trip
        with pytest.raises(CrashRequested):
            reorder_chain(fact, prefix)
        fact.dev.hooks.on_persist = None
        fact.dev.crash()
        fact.dev.recover_view()
        fact.structural_recover()
        check_structure(fact, shadow)
