"""Crash-consistency sweeps for DeNova (paper §V-C, all scenarios).

Each test builds a deterministic workload, then re-runs it crashing at
*every* persistence event (pre- and post-commit), mounts, recovers, and
checks the §V-C guarantees:

* no data loss: every reachable file reads back content it legitimately
  held at some commit point;
* RFC never undercounts live references (the data-loss hazard of
  §IV-D1);
* UCs are quiescent after recovery;
* FACT chains, delete pointers and free lists are structurally sound;
* dedupe-flags converge: after recovery plus one daemon drain, no entry
  is left ``in_process``.
"""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import PAGE_SIZE
from repro.nova.entries import DEDUPE_IN_PROCESS, WriteEntry, decode_entry
from repro.pm import DRAM, PMDevice, SimClock


def page_of(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * PAGE_SIZE


def no_in_process_entries(fs) -> bool:
    for cache in fs.caches.values():
        for _a, raw in fs.log.iter_slots(cache.inode.log_head,
                                         cache.inode.log_tail, silent=True):
            e = decode_entry(raw)
            if (isinstance(e, WriteEntry)
                    and e.dedupe_flag == DEDUPE_IN_PROCESS):
                return False
    return True


def standard_check(expected: dict):
    """A check closure verifying content + invariants + flag convergence."""

    def check(dev, point, phase):
        fs = DeNovaFS.mount(dev)
        check_fs_invariants(fs)
        assert no_in_process_entries(fs), \
            "recovery must resume every in_process transaction"
        for path, contents in expected.items():
            if not fs.exists(path):
                continue
            ino = fs.lookup(path)
            size = fs.stat(ino).size
            got = fs.read(ino, 0, size)
            assert any(got == c[:size] and size in (0, len(c))
                       for c in contents), \
                f"{path}: recovered content matches no commit point"
        # The system must be able to continue: drain + fresh dedup work.
        fs.daemon.drain()
        check_fs_invariants(fs)

    return check


class TestCrashDuringDeduplication:
    """§V-C1: crashes inside Algorithm 1 (Inconsistency Handling I-III)."""

    def test_crash_sweep_daemon_processing(self):
        def build():
            dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
            fs = DeNovaFS.mkfs(dev, max_inodes=64)
            a = fs.create("/a")
            b = fs.create("/b")
            fs.write(a, 0, page_of(1) + page_of(2) + page_of(3))
            fs.write(b, 0, page_of(9) + page_of(1) + page_of(2))

            def scenario():
                fs.daemon.drain()

            return dev, scenario

        expected = {
            "/a": [page_of(1) + page_of(2) + page_of(3)],
            "/b": [page_of(9) + page_of(1) + page_of(2)],
        }
        assert sweep_crash_points(build, standard_check(expected)) > 5

    def test_crash_sweep_daemon_processing_torn(self):
        def build():
            dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
            fs = DeNovaFS.mkfs(dev, max_inodes=64)
            a = fs.create("/a")
            b = fs.create("/b")
            fs.write(a, 0, page_of(1) * 2)
            fs.write(b, 0, page_of(1) * 2)

            def scenario():
                fs.daemon.drain()

            return dev, scenario

        expected = {"/a": [page_of(1) * 2], "/b": [page_of(1) * 2]}
        assert sweep_crash_points(build, standard_check(expected),
                                  mode="torn") > 5

    def test_recovered_queue_finishes_the_dedup(self):
        """Handling I/III: after any crash, drain leaves the same space
        savings a crash-free run reaches."""
        def build():
            dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
            fs = DeNovaFS.mkfs(dev, max_inodes=64)
            for i in range(3):
                ino = fs.create(f"/f{i}")
                fs.write(ino, 0, page_of(7) + page_of(i))

            def scenario():
                fs.daemon.drain()

            return dev, scenario

        def check(dev, point, phase):
            fs = DeNovaFS.mount(dev)
            fs.daemon.drain()
            st = fs.space_stats()
            # 3 files x 2 pages; page_of(7) shared -> 4 physical.
            assert st["logical_pages"] == 6
            assert st["physical_pages"] == 4, \
                f"space savings not re-established at point {point}"
            check_fs_invariants(fs)

        assert sweep_crash_points(build, check) > 5


class TestCrashDuringReclaim:
    """§V-C2: crashes in the RFC-checked reclaiming process."""

    def test_crash_sweep_unlink_of_shared_file(self):
        def build():
            dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
            fs = DeNovaFS.mkfs(dev, max_inodes=64)
            a = fs.create("/a")
            b = fs.create("/b")
            fs.write(a, 0, page_of(1) * 2)
            fs.write(b, 0, page_of(1) * 2)
            fs.daemon.drain()

            def scenario():
                fs.unlink("/a")

            return dev, scenario

        def check(dev, point, phase):
            fs = DeNovaFS.mount(dev)
            # /b's data must survive no matter where the unlink crashed.
            assert fs.read(fs.lookup("/b"), 0, 2 * PAGE_SIZE) \
                == page_of(1) * 2
            check_fs_invariants(fs)

        assert sweep_crash_points(build, check) > 3

    def test_crash_sweep_overwrite_of_shared_page(self):
        def build():
            dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
            fs = DeNovaFS.mkfs(dev, max_inodes=64)
            a = fs.create("/a")
            b = fs.create("/b")
            fs.write(a, 0, page_of(1))
            fs.write(b, 0, page_of(1))
            fs.daemon.drain()

            def scenario():
                fs.write(a, 0, page_of(5))

            return dev, scenario

        expected = {"/a": [page_of(1), page_of(5)], "/b": [page_of(1)]}

        def check(dev, point, phase):
            fs = DeNovaFS.mount(dev)
            assert fs.read(fs.lookup("/b"), 0, PAGE_SIZE) == page_of(1)
            got = fs.read(fs.lookup("/a"), 0, PAGE_SIZE)
            assert got in expected["/a"]
            check_fs_invariants(fs)

        assert sweep_crash_points(build, check) > 3


class TestCrashFullLifecycle:
    def test_crash_sweep_whole_workload_subsampled(self):
        """Write + dedup + overwrite + unlink, crashing on a stride."""
        def build():
            dev = PMDevice(2048 * PAGE_SIZE, model=DRAM, clock=SimClock())
            fs = DeNovaFS.mkfs(dev, max_inodes=64)

            def scenario():
                inos = []
                for i in range(4):
                    ino = fs.create(f"/f{i}")
                    fs.write(ino, 0, page_of(7) + page_of(i))
                    inos.append(ino)
                fs.daemon.drain()
                fs.write(inos[0], 0, page_of(8) * 2)
                fs.unlink("/f1")
                fs.daemon.drain()
                fs.truncate(inos[2], PAGE_SIZE)
                fs.daemon.drain()

            return dev, scenario

        def check(dev, point, phase):
            fs = DeNovaFS.mount(dev)
            check_fs_invariants(fs)
            fs.daemon.drain()
            check_fs_invariants(fs)
            # Whatever survives must read consistently.
            for i in range(4):
                path = f"/f{i}"
                if fs.exists(path):
                    ino = fs.lookup(path)
                    st = fs.stat(ino)
                    assert len(fs.read(ino, 0, st.size)) == st.size

        assert sweep_crash_points(build, check, stride=7) > 10

    def test_double_crash(self):
        """Crash during recovery-driven dedup, then recover again."""
        dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=64)
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(1) * 2)
        fs.write(b, 0, page_of(1) * 2)
        dev.crash()
        dev.recover_view()
        fs2 = DeNovaFS.mount(dev)
        assert len(fs2.dwq) == 2  # rebuilt from dedupe_needed flags
        # Crash again mid-drain.
        from repro.pm.device import CrashRequested

        count = [0]

        def trip(n, d):
            count[0] += 1
            if count[0] == 3:
                raise CrashRequested("drain", 3)

        dev.hooks.on_persist = trip
        with pytest.raises(CrashRequested):
            fs2.daemon.drain()
        dev.hooks.on_persist = None
        dev.crash()
        dev.recover_view()
        fs3 = DeNovaFS.mount(dev)
        check_fs_invariants(fs3)
        fs3.daemon.drain()
        assert fs3.read(fs3.lookup("/a"), 0, 2 * PAGE_SIZE) == page_of(1) * 2
        assert fs3.read(fs3.lookup("/b"), 0, 2 * PAGE_SIZE) == page_of(1) * 2
        assert fs3.space_stats()["physical_pages"] == 1
        check_fs_invariants(fs3)


class TestRecoveryReports:
    def test_dwq_rebuild_counts_needed_entries(self):
        dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=64)
        for i in range(4):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(i))
        dev.crash()
        dev.recover_view()
        fs2 = DeNovaFS.mount(dev)
        rep = fs2.last_recovery.extra["dedup"]
        assert rep["dwq_rebuilt"] == 4
        assert rep["in_process_resumed"] == 0
        assert len(fs2.dwq) == 4

    def test_stale_uc_discarded(self):
        dev = PMDevice(1024 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=64)
        a = fs.create("/a")
        fs.write(a, 0, page_of(1))
        fs.daemon.drain()
        (idx, _), = fs.fact.live_entries().items()
        fs.fact.inc_uc(idx)  # a transaction that will never commit
        dev.crash()
        dev.recover_view()
        fs2 = DeNovaFS.mount(dev)
        rep = fs2.last_recovery.extra["dedup"]
        assert rep["uc_discarded"] == 1
        (idx2, ent), = fs2.fact.live_entries().items()
        assert ent.update_count == 0
        assert ent.refcount == 1
