"""Property-based (stateful) testing of FACT against a dict oracle.

The machine performs random insert / stage / commit / discard / dec /
remove / reorder / crash-and-recover sequences and checks after every
step that FACT's decoded contents equal a trivial Python-dict model, and
that the structural invariants (chains, delete pointers) hold.
"""

import hashlib

import hypothesis.strategies as st
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.dedup.fact import FACT, FactFull
from repro.dedup.reorder import reorder_chain
from repro.nova.layout import Geometry, PAGE_SIZE, Superblock
from repro.pm import DRAM, PMDevice, SimClock

N_BITS = 5  # tiny prefix space -> dense collisions
TOTAL_PAGES = 32


def fp_for(key: int) -> bytes:
    return hashlib.sha1(key.to_bytes(8, "little")).digest()


class FactMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        dev = PMDevice(TOTAL_PAGES * PAGE_SIZE, model=DRAM,
                       clock=SimClock())
        geo = Geometry.compute(TOTAL_PAGES, max_inodes=4, with_dedup=True,
                               fact_prefix_bits=N_BITS)
        Superblock(dev).format(geo)
        self.fact = FACT(dev, geo)
        self.dev = dev
        # Oracle: key -> [idx, rfc, uc, block]; blocks are unique per key.
        self.model: dict[int, list] = {}
        self.next_block = 1

    # -- operations -----------------------------------------------------------

    @rule(key=st.integers(0, 24))
    def insert(self, key):
        if key in self.model:
            return
        block = self.next_block
        if block >= TOTAL_PAGES:
            return
        try:
            idx = self.fact.insert(fp_for(key), block)
        except FactFull:
            return
        self.next_block += 1
        self.model[key] = [idx, 0, 1, block]

    @rule(key=st.integers(0, 24))
    def stage_uc(self, key):
        ent = self.model.get(key)
        if ent is None:
            return
        self.fact.inc_uc(ent[0])
        ent[2] += 1

    @rule(key=st.integers(0, 24))
    def commit_uc(self, key):
        ent = self.model.get(key)
        if ent is None:
            return
        committed = self.fact.commit_uc(ent[0])
        assert committed == (ent[2] > 0)
        if committed:
            ent[2] -= 1
            ent[1] += 1

    @rule(key=st.integers(0, 24))
    def discard_uc(self, key):
        ent = self.model.get(key)
        if ent is None:
            return
        self.fact.discard_uc(ent[0])
        ent[2] = 0

    @rule(key=st.integers(0, 24))
    def dec_and_maybe_remove(self, key):
        ent = self.model.get(key)
        if ent is None or ent[1] == 0:
            return
        new_rfc = self.fact.dec_rfc(ent[0])
        ent[1] -= 1
        assert new_rfc == ent[1]
        if new_rfc == 0 and ent[2] == 0:
            self.fact.remove(ent[0])
            del self.model[key]

    @rule(prefix=st.integers(0, 2 ** N_BITS - 1))
    def reorder(self, prefix):
        reorder_chain(self.fact, prefix)
        # Indexes never move; the oracle is unaffected.

    @rule()
    def crash_recover(self):
        """Everything is persisted synchronously, so a crash + structural
        recovery must be a no-op for the logical contents."""
        self.dev.crash()
        self.dev.recover_view()
        self.fact.structural_recover()

    # -- correspondence -----------------------------------------------------------

    @rule(key=st.integers(0, 24))
    def lookup_matches_model(self, key):
        res = self.fact.lookup(fp_for(key))
        ent = self.model.get(key)
        if ent is None:
            assert res.found is None
        else:
            assert res.found is not None
            assert res.found.idx == ent[0]
            assert res.found.refcount == ent[1]
            assert res.found.update_count == ent[2]
            assert res.found.block == ent[3]

    @rule(key=st.integers(0, 24))
    def delete_pointer_matches_model(self, key):
        ent = self.model.get(key)
        if ent is None:
            return
        found = self.fact.entry_for_block(ent[3])
        assert found is not None and found.idx == ent[0]

    @invariant()
    def chains_are_sound(self):
        if getattr(self, "fact", None) is not None:
            self.fact.check_chains()

    @invariant()
    def live_set_matches_model(self):
        if getattr(self, "fact", None) is None:
            return
        live = self.fact.live_entries()
        assert {e[0] for e in self.model.values()} == set(live)


TestFactMachine = FactMachine.TestCase
TestFactMachine.settings = settings(
    max_examples=30,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
