"""Tests for reflink copies and snapshots."""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import PAGE_SIZE
from repro.nova.fs import FileExists, FileNotFound, FSError, ReadOnlyFile
from repro.pm import DRAM, PMDevice, SimClock
from repro.workloads import DataGenerator


def make_fs(pages=4096):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


class TestReflink:
    def test_reflink_shares_all_pages(self):
        fs = make_fs()
        src = fs.create("/src")
        data = page_of(1) + page_of(2) + page_of(3)
        fs.write(src, 0, data)
        fs.daemon.drain()
        used_before = fs.statfs()["used_pages"]
        dst = fs.reflink("/src", "/dst")
        # Metadata only: at most a log page + nothing else.
        assert fs.statfs()["used_pages"] <= used_before + 1
        assert fs.read(dst, 0, len(data)) == data
        st = fs.space_stats()
        assert st["logical_pages"] == 6
        assert st["physical_pages"] == 3
        check_fs_invariants(fs)

    def test_reflink_of_pending_source(self):
        """Source not yet deduplicated: reflink fingerprints it eagerly
        and the later daemon pass adds nothing."""
        fs = make_fs()
        src = fs.create("/src")
        fs.write(src, 0, page_of(5) * 2)
        assert len(fs.dwq) == 1  # source dedup still queued
        dst = fs.reflink("/src", "/dst")
        assert fs.read(dst, 0, 2 * PAGE_SIZE) == page_of(5) * 2
        check_fs_invariants(fs)
        fs.daemon.drain()  # the queued source node self-hits
        check_fs_invariants(fs)
        # Overwrite the source: the shared page must survive for dst.
        fs.write(src, 0, page_of(9) * 2)
        assert fs.read(dst, 0, 2 * PAGE_SIZE) == page_of(5) * 2
        check_fs_invariants(fs)

    def test_cow_isolation_after_reflink(self):
        fs = make_fs()
        src = fs.create("/src")
        fs.write(src, 0, page_of(1) * 4)
        fs.daemon.drain()
        dst = fs.reflink("/src", "/dst")
        fs.write(dst, PAGE_SIZE, page_of(7))
        assert fs.read(src, PAGE_SIZE, PAGE_SIZE) == page_of(1)
        assert fs.read(dst, PAGE_SIZE, PAGE_SIZE) == page_of(7)
        check_fs_invariants(fs)

    def test_reflink_sparse_file(self):
        fs = make_fs()
        src = fs.create("/sparse")
        fs.write(src, 5 * PAGE_SIZE, b"tail")
        fs.daemon.drain()
        dst = fs.reflink("/sparse", "/copy")
        assert fs.stat(dst).size == 5 * PAGE_SIZE + 4
        assert fs.read(dst, 0, PAGE_SIZE) == bytes(PAGE_SIZE)
        assert fs.read(dst, 5 * PAGE_SIZE, 4) == b"tail"

    def test_reflink_chain(self):
        fs = make_fs()
        src = fs.create("/a")
        fs.write(src, 0, page_of(3) * 2)
        fs.daemon.drain()
        fs.reflink("/a", "/b")
        fs.reflink("/b", "/c")
        fs.reflink("/c", "/d")
        assert fs.space_stats()["physical_pages"] == 1  # all dup pages
        fs.unlink("/a")
        fs.unlink("/b")
        fs.unlink("/c")
        assert fs.read(fs.lookup("/d"), 0, 2 * PAGE_SIZE) == page_of(3) * 2
        check_fs_invariants(fs)

    def test_reflink_errors(self):
        fs = make_fs()
        fs.create("/f")
        fs.mkdir("/d")
        with pytest.raises(FileExists):
            fs.reflink("/f", "/d")
        with pytest.raises(FileNotFound):
            fs.reflink("/ghost", "/x")
        with pytest.raises(Exception):
            fs.reflink("/d", "/dircopy")  # directories don't reflink

    def test_reflink_survives_crash(self):
        def build():
            fs = make_fs(pages=2048)
            src = fs.create("/src")
            fs.write(src, 0, page_of(1) + page_of(2))
            fs.daemon.drain()

            def scenario():
                fs.reflink("/src", "/dst")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = DeNovaFS.mount(dev)
            data = page_of(1) + page_of(2)
            assert fs2.read(fs2.lookup("/src"), 0, len(data)) == data
            if fs2.exists("/dst"):
                assert fs2.read(fs2.lookup("/dst"), 0, len(data)) == data
            check_fs_invariants(fs2)
            fs2.daemon.drain()
            # Whatever survived, overwriting src never harms dst.
            fs2.write(fs2.lookup("/src"), 0, page_of(9) * 2)
            if fs2.exists("/dst"):
                assert fs2.read(fs2.lookup("/dst"), 0, len(data)) == data
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) > 3


class TestSnapshots:
    def populate(self, fs):
        gen = DataGenerator(alpha=0.3, seed=30, dup_pool_size=4)
        fs.mkdir("/work")
        for i in range(5):
            ino = fs.create(f"/work/f{i}")
            fs.write(ino, 0, gen.file_data(2 * PAGE_SIZE))
        fs.daemon.drain()

    def test_snapshot_is_point_in_time(self):
        fs = make_fs()
        self.populate(fs)
        before = fs.read(fs.lookup("/work/f0"), 0, 2 * PAGE_SIZE)
        rep = fs.snapshot("monday")
        assert rep["files"] == 5
        fs.write(fs.lookup("/work/f0"), 0, page_of(200) * 2)
        snap = fs.read(fs.lookup("/.snapshots/monday/work/f0"), 0,
                       2 * PAGE_SIZE)
        assert snap == before
        check_fs_invariants(fs)

    def test_snapshot_files_immutable(self):
        fs = make_fs()
        self.populate(fs)
        fs.snapshot("frozen")
        ino = fs.lookup("/.snapshots/frozen/work/f1")
        with pytest.raises(ReadOnlyFile):
            fs.write(ino, 0, b"nope")
        with pytest.raises(ReadOnlyFile):
            fs.truncate(ino, 0)

    def test_snapshot_costs_metadata_only(self):
        fs = make_fs()
        self.populate(fs)
        phys_before = fs.space_stats()["physical_pages"]
        used_before = fs.statfs()["used_pages"]
        fs.snapshot("cheap")
        assert fs.space_stats()["physical_pages"] == phys_before
        # Log pages for 5 reflinked files + 2 dirs, no data pages.
        assert fs.statfs()["used_pages"] - used_before <= 8

    def test_snapshot_list_and_delete(self):
        fs = make_fs()
        self.populate(fs)
        fs.snapshot("a")
        fs.snapshot("b")
        assert fs.list_snapshots() == ["a", "b"]
        used_with = fs.statfs()["used_pages"]
        removed = fs.delete_snapshot("a")
        assert removed == 5
        assert fs.list_snapshots() == ["b"]
        assert fs.statfs()["used_pages"] < used_with
        # Live data untouched.
        assert fs.stat(fs.lookup("/work/f3")).size == 2 * PAGE_SIZE
        check_fs_invariants(fs)

    def test_snapshots_survive_remount_and_crash(self):
        fs = make_fs()
        self.populate(fs)
        before = fs.read(fs.lookup("/work/f2"), 0, 2 * PAGE_SIZE)
        fs.snapshot("keep")
        fs.write(fs.lookup("/work/f2"), 0, page_of(99) * 2)
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = DeNovaFS.mount(fs.dev)
        snap = fs2.read(fs2.lookup("/.snapshots/keep/work/f2"), 0,
                        2 * PAGE_SIZE)
        assert snap == before
        ino = fs2.lookup("/.snapshots/keep/work/f2")
        with pytest.raises(ReadOnlyFile):
            fs2.write(ino, 0, b"still frozen")  # flag recovered from PM
        check_fs_invariants(fs2)

    def test_bad_snapshot_names(self):
        fs = make_fs()
        with pytest.raises(ValueError):
            fs.snapshot("a/b")
        with pytest.raises(ValueError):
            fs.snapshot("")
        fs.snapshot("x")
        with pytest.raises(FileExists):
            fs.snapshot("x")
        with pytest.raises(FileNotFound):
            fs.delete_snapshot("ghost")

    def test_nested_snapshot_excluded(self):
        """Snapshots never snapshot the snapshot directory."""
        fs = make_fs()
        self.populate(fs)
        fs.snapshot("one")
        rep = fs.snapshot("two")
        assert rep["files"] == 5  # not 10
        assert not fs.exists("/.snapshots/two/.snapshots")

    def test_deep_verify_with_snapshots(self):
        fs = make_fs()
        self.populate(fs)
        fs.snapshot("audit")
        assert fs.deep_verify()["clean"]


class TestSparseReflinkCrash:
    def test_fully_sparse_reflink_size_survives_crash(self):
        """Regression (found by the stateful oracle): reflinking a file
        with no mapped pages must still persist the destination's size."""
        fs = make_fs()
        src = fs.create("/src")
        fs.truncate(src, 1)        # size without any data pages
        fs.reflink("/src", "/dst")
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = DeNovaFS.mount(fs.dev)
        ino = fs2.lookup("/dst")
        assert fs2.stat(ino).size == 1
        assert fs2.read(ino, 0, 2) == b"\x00"
        check_fs_invariants(fs2)

    def test_sparse_tail_reflink(self):
        fs = make_fs()
        src = fs.create("/src")
        fs.write(src, 0, b"head")
        fs.truncate(src, 3 * PAGE_SIZE + 7)  # grow a sparse tail
        fs.daemon.drain()
        fs.reflink("/src", "/dst")
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = DeNovaFS.mount(fs.dev)
        ino = fs2.lookup("/dst")
        assert fs2.stat(ino).size == 3 * PAGE_SIZE + 7
        assert fs2.read(ino, 0, 4) == b"head"
        check_fs_invariants(fs2)
