"""Tests for the inline-dedup baselines (DeNova-Inline and adaptive)."""

import numpy as np
import pytest

from repro.dedup import DeNovaFS, InlineDedupFS
from repro.dedup.inline import AdaptiveInlineFS
from repro.failure import check_fs_invariants
from repro.nova import NovaFS, PAGE_SIZE
from repro.nova.fs import NoSpace
from repro.pm import DRAM, OPTANE_DCPM, PMDevice, SimClock


def make_fs(cls=InlineDedupFS, pages=2048, model=DRAM, **kw):
    dev = PMDevice(pages * PAGE_SIZE, model=model, clock=SimClock())
    return cls.mkfs(dev, max_inodes=kw.pop("max_inodes", 256), **kw)


def page_of(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * PAGE_SIZE


class TestInlineCorrectness:
    def test_duplicates_never_stored(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(1) * 3)
        used1 = fs.statfs()["used_pages"]
        b = fs.create("/b")
        fs.write(b, 0, page_of(1) * 3)
        # Only log-page growth; zero new data pages.
        assert fs.statfs()["used_pages"] <= used1 + 1
        assert fs.read(b, 0, 3 * PAGE_SIZE) == page_of(1) * 3
        check_fs_invariants(fs)

    def test_dedup_is_immediate_no_queue(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(1))
        assert len(fs.dwq) == 0
        assert fs.space_stats()["dwq_backlog"] == 0
        assert fs.fingerprinter.strong_count == 1  # hashed in write path

    def test_mixed_unique_dup_write(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(1) + page_of(2))
        b = fs.create("/b")
        data = page_of(3) + page_of(1) + page_of(4) + page_of(2)
        fs.write(b, 0, data)
        assert fs.read(b, 0, len(data)) == data
        st = fs.space_stats()
        assert st["logical_pages"] == 6
        assert st["physical_pages"] == 4
        check_fs_invariants(fs)

    def test_unaligned_write_content_preserved(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, b"A" * (2 * PAGE_SIZE))
        fs.write(a, 100, b"B" * 50)
        got = fs.read(a, 0, 2 * PAGE_SIZE)
        assert got[100:150] == b"B" * 50
        assert got[:100] == b"A" * 100
        check_fs_invariants(fs)

    def test_rfc_counts_inline_references(self):
        fs = make_fs()
        for i in range(3):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(42))
        (idx, ent), = fs.fact.live_entries().items()
        assert ent.refcount == 3
        assert ent.update_count == 0

    def test_overwrite_and_unlink_reclaim(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(1) * 2)
        fs.write(b, 0, page_of(1) * 2)
        fs.write(a, 0, page_of(2) * 2)
        assert fs.read(b, 0, 2 * PAGE_SIZE) == page_of(1) * 2
        fs.unlink("/b")
        assert fs.fact.live_entries()  # page 2 content remains for /a
        check_fs_invariants(fs)

    def test_enospc_rolls_back_metadata(self):
        fs = make_fs(pages=128, max_inodes=16)
        a = fs.create("/a")
        fs.write(a, 0, page_of(1))
        entries_before = len(fs.fact.live_entries())
        rng = np.random.default_rng(0)
        big = rng.integers(0, 256, 500 * PAGE_SIZE, dtype=np.uint8).tobytes()
        with pytest.raises(NoSpace):
            fs.write(a, 0, big)
        assert len(fs.fact.live_entries()) == entries_before
        live = fs.fact.live_entries()
        assert all(e.update_count == 0 for e in live.values())
        assert fs.read(a, 0, PAGE_SIZE) == page_of(1)
        check_fs_invariants(fs)

    def test_crash_recovery_of_inline_write(self):
        """Inline transactions reuse the UC/in_process machinery, so the
        §V-C recovery applies to them too."""
        from repro.failure import sweep_crash_points

        def build():
            fs = make_fs(pages=512, max_inodes=32)
            a = fs.create("/a")
            fs.write(a, 0, page_of(1) * 2)
            b = fs.create("/b")

            def scenario():
                fs.write(b, 0, page_of(1) + page_of(9))

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = InlineDedupFS.mount(dev)
            a2 = fs2.lookup("/a")
            assert fs2.read(a2, 0, 2 * PAGE_SIZE) == page_of(1) * 2
            if fs2.exists("/b"):
                b2 = fs2.lookup("/b")
                size = fs2.stat(b2).size
                assert size in (0, 2 * PAGE_SIZE)
                if size:
                    assert fs2.read(b2, 0, size) == page_of(1) + page_of(9)
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check) > 0


class TestAdaptive:
    def test_weak_only_until_collision(self):
        fs = make_fs(AdaptiveInlineFS)
        a = fs.create("/a")
        fs.write(a, 0, page_of(1) + page_of(2))
        assert fs.fingerprinter.weak_count == 2
        assert fs.fingerprinter.strong_count == 0  # unique data: no SHA-1
        assert fs.adaptive_stats["weak_misses"] == 2

    def test_collision_triggers_strong_and_lazy(self):
        fs = make_fs(AdaptiveInlineFS)
        a = fs.create("/a")
        fs.write(a, 0, page_of(1))
        b = fs.create("/b")
        fs.write(b, 0, page_of(1))
        assert fs.adaptive_stats["weak_hits"] == 1
        assert fs.adaptive_stats["confirmed_dups"] == 1
        assert fs.adaptive_stats["lazy_strong"] == 1  # stored chunk hashed
        assert fs.fingerprinter.strong_count == 2    # lazy + incoming
        assert fs.space_stats()["physical_pages"] == 1

    def test_contents_correct_after_dedup(self):
        fs = make_fs(AdaptiveInlineFS)
        data = page_of(1) + page_of(2) + page_of(1) + page_of(3)
        a = fs.create("/a")
        fs.write(a, 0, data)
        assert fs.read(a, 0, len(data)) == data
        assert fs.space_stats()["physical_pages"] == 3

    def test_reclaim_through_dram_table(self):
        fs = make_fs(AdaptiveInlineFS)
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(1))
        fs.write(b, 0, page_of(1))
        fs.unlink("/a")
        assert fs.read(b, 0, PAGE_SIZE) == page_of(1)
        fs.unlink("/b")
        assert not fs._by_block

    def test_adaptive_cheaper_than_strong_on_unique_data(self):
        """Eq. 4 vs Eq. 2: with alpha=0 the adaptive variant only pays
        T_fw, so its write path must be faster than always-SHA-1."""
        def cost(cls):
            fs = make_fs(cls, model=OPTANE_DCPM)
            rng = np.random.default_rng(7)
            ino = fs.create("/f")
            t0 = fs.clock.now_ns
            for i in range(20):
                data = rng.integers(0, 256, PAGE_SIZE,
                                    dtype=np.uint8).tobytes()
                fs.write(ino, i * PAGE_SIZE, data)
            return fs.clock.now_ns - t0

        assert cost(AdaptiveInlineFS) < 0.6 * cost(InlineDedupFS)


class TestVariantComparison:
    def test_inline_slower_than_nova_and_offline_is_not(self):
        """The paper's headline (Fig. 8 shape) at miniature scale."""
        def write_time(cls, drain):
            fs = make_fs(cls, model=OPTANE_DCPM)
            rng = np.random.default_rng(1)
            t0 = fs.clock.now_ns
            for i in range(30):
                ino = fs.create(f"/f{i}")
                fs.write(ino, 0,
                         rng.integers(0, 256, PAGE_SIZE,
                                      dtype=np.uint8).tobytes())
            elapsed = fs.clock.now_ns - t0
            return elapsed

        t_nova = write_time(NovaFS, drain=False)
        t_inline = write_time(InlineDedupFS, drain=False)
        t_denova = write_time(DeNovaFS, drain=False)
        assert t_inline > 1.5 * t_nova          # inline pays T_f inline
        assert t_denova < 1.02 * t_nova + 5_000  # offline: <1% foreground
