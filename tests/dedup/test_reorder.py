"""Unit tests for IAA chain reordering and its crash recovery (Fig. 7)."""

import hashlib

import pytest

from repro.dedup.fact import FACT, _OFF_PREV
from repro.dedup.reorder import chain_order, recover_reorder, reorder_chain
from repro.nova.layout import PAGE_SIZE, Geometry, Superblock
from repro.pm import DRAM, CrashRequested, PMDevice, SimClock

N_BITS = 7
PREFIX = 11


def make_fact():
    dev = PMDevice(128 * PAGE_SIZE, model=DRAM, clock=SimClock())
    geo = Geometry.compute(128, max_inodes=16, with_dedup=True,
                           fact_prefix_bits=N_BITS)
    Superblock(dev).format(geo)
    return FACT(dev, geo)


def mkfp(salt: int) -> bytes:
    body = hashlib.sha1(salt.to_bytes(8, "little")).digest()
    head = int.from_bytes(body[:8], "big")
    head = (head & ((1 << (64 - N_BITS)) - 1)) | (PREFIX << (64 - N_BITS))
    return head.to_bytes(8, "big") + body[8:]


def build_chain(fact, rfcs):
    """Insert len(rfcs) colliding entries and give each its RFC."""
    idxs = []
    for s, rfc in enumerate(rfcs):
        idx = fact.insert(mkfp(s), 60 + s)
        fact.commit_uc(idx)          # RFC 1
        for _ in range(rfc - 1):
            fact.inc_uc(idx)
            fact.commit_uc(idx)
        idxs.append(idx)
    return idxs


class TestReorder:
    def test_reorders_iaa_by_rfc_descending(self):
        fact = make_fact()
        idxs = build_chain(fact, [1, 2, 9, 4, 7])
        assert reorder_chain(fact, PREFIX)
        order = chain_order(fact, PREFIX)
        assert order[0] == idxs[0]  # DAA head is pinned
        # IAA tail sorted by RFC: 9, 7, 4, 2.
        assert order[1:] == [idxs[2], idxs[4], idxs[3], idxs[1]]
        fact.check_chains()

    def test_lookup_cheaper_after_reorder(self):
        fact = make_fact()
        idxs = build_chain(fact, [1, 1, 1, 1, 1, 8])
        hot_fp = mkfp(5)
        before = fact.lookup(hot_fp).steps
        assert reorder_chain(fact, PREFIX)
        after = fact.lookup(hot_fp).steps
        assert after < before
        assert after == 2  # right behind the head

    def test_noop_when_already_sorted(self):
        fact = make_fact()
        build_chain(fact, [5, 2, 4, 3])  # IAA RFCs: 2, 4, 3 -> unsorted
        assert reorder_chain(fact, PREFIX)
        assert not reorder_chain(fact, PREFIX)  # second call: no change
        fact2 = make_fact()
        build_chain(fact2, [1, 9, 5, 2])  # already descending
        assert not reorder_chain(fact2, PREFIX)

    def test_noop_on_short_chains(self):
        fact = make_fact()
        build_chain(fact, [3])
        assert not reorder_chain(fact, PREFIX)
        fact2 = make_fact()
        build_chain(fact2, [1, 5])
        assert reorder_chain(fact2, PREFIX) or True  # 1 IAA node: no-op
        assert chain_order(fact2, PREFIX)  # still walkable

    def test_contents_preserved(self):
        fact = make_fact()
        build_chain(fact, [1, 3, 2, 5])
        reorder_chain(fact, PREFIX)
        for s in range(4):
            res = fact.lookup(mkfp(s))
            assert res.found is not None
            assert res.found.block == 60 + s

    def test_delete_pointers_unaffected(self):
        """Reordering never moves entries, so block->entry stays valid."""
        fact = make_fact()
        build_chain(fact, [1, 4, 2])
        reorder_chain(fact, PREFIX)
        for s in range(3):
            assert fact.entry_for_block(60 + s) is not None


class TestReorderCrashRecovery:
    def crash_at_update(self, k, rfcs=(1, 5, 2, 8, 3)):
        """Run a reorder but crash at the k-th FACT pointer update."""
        fact = make_fact()
        idxs = build_chain(fact, list(rfcs))
        counter = [0]

        def on_write(_n, dev):
            # Count only stores into the FACT region.
            counter[0] += 1
            if counter[0] == k:
                raise CrashRequested("reorder", k)

        fact.dev.hooks.on_write = on_write
        crashed = False
        try:
            reorder_chain(fact, PREFIX)
        except CrashRequested:
            crashed = True
        fact.dev.hooks.on_write = None
        fact.dev.crash()
        fact.dev.recover_view()
        return fact, idxs, crashed

    def count_updates(self):
        fact = make_fact()
        build_chain(fact, [1, 5, 2, 8, 3])
        counter = [0]
        fact.dev.hooks.on_write = lambda n, d: counter.__setitem__(
            0, counter[0] + 1)
        reorder_chain(fact, PREFIX)
        fact.dev.hooks.on_write = None
        return counter[0]

    def test_crash_at_every_pointer_update(self):
        """Fig. 7's claim: a crash at *any* step of the reorder leaves a
        recoverable chain with identical membership."""
        total = self.count_updates()
        assert total >= 10
        for k in range(1, total + 1):
            fact, idxs, crashed = self.crash_at_update(k)
            if not crashed:
                continue
            result = recover_reorder(fact, PREFIX)
            assert result in ("clean", "rebuilt_prevs", "resumed")
            fact.check_chains()
            order = chain_order(fact, PREFIX)
            assert order[0] == PREFIX
            assert sorted(order[1:]) == sorted(idxs[1:]), \
                f"chain membership changed after crash at update {k}"
            # Every fingerprint still findable.
            for s in range(5):
                assert fact.lookup(mkfp(s)).found is not None

    def test_phase1_crash_keeps_old_order(self):
        fact, idxs, crashed = self.crash_at_update(2)  # during prev pass
        assert crashed
        assert recover_reorder(fact, PREFIX) == "rebuilt_prevs"
        assert chain_order(fact, PREFIX) == idxs  # old order preserved

    def test_phase2_crash_completes_new_order(self):
        total = self.count_updates()
        fact, idxs, crashed = self.crash_at_update(total - 1)
        assert crashed
        assert recover_reorder(fact, PREFIX) == "resumed"
        order = chain_order(fact, PREFIX)
        # New order completed: IAA sorted by RFC desc -> 8, 5, 3, 2.
        assert order[1:] == [idxs[3], idxs[1], idxs[4], idxs[2]]

    def test_recover_clean_chain_is_noop(self):
        fact = make_fact()
        idxs = build_chain(fact, [1, 2, 3])
        assert recover_reorder(fact, PREFIX) == "clean"
        assert chain_order(fact, PREFIX) == idxs

    def test_structural_recover_triggers_reorder_recovery(self):
        fact = make_fact()
        build_chain(fact, [1, 5, 2])
        # Leave a commit flag set, as a phase-1 crash would.
        fact._write_u64(PREFIX, _OFF_PREV, PREFIX + 1)
        rep = fact.structural_recover()
        assert rep["reorders_recovered"] == 1
        fact.check_chains()
