"""Adversarial weak-fingerprint properties of the hybrid pipeline.

The hybrid path trusts CRC32 only as a *pre-filter*: a weak hit merely
nominates candidates whose bytes are then SHA-1-confirmed on the DWQ
path.  These properties attack exactly that trust boundary with forged
CRC32 collisions (solved over GF(2), not found by luck):

* a weak hit whose strong confirmation fails must NEVER alias pages —
  the colliding write always stands as its own physical page;
* with collisions planted among genuine duplicates, the final FACT
  state (fingerprint -> refcount) must be identical to what the pure
  delayed pipeline produces for the same writes, for every seed.
"""

import random
import zlib

import pytest

from repro.core import Config, Variant, make_fs
from repro.dedup.hybrid import MODE_INLINE
from repro.failure import check_fs_invariants
from repro.nova.layout import PAGE_SIZE

pytestmark = pytest.mark.hybrid

CFG = Config(device_pages=1024, max_inodes=64, cpus=2)


# ------------------------------------------------------------ the forger


def forge_tail(body: bytes, target: int) -> bytes:
    """A 4-byte tail ``t`` with ``crc32(body + t) == target``.

    CRC32 is affine in the appended tail over GF(2):
    ``crc(body+t) = crc(body+0) XOR L(t)`` with ``L`` linear and (for a
    4-byte tail) invertible, so any target is reachable.  Solve
    ``L(t) = target XOR crc(body+0)`` by Gaussian elimination over the
    32 single-bit basis columns.
    """
    base = zlib.crc32(body + bytes(4)) & 0xFFFFFFFF
    vecs = [((zlib.crc32(body + (1 << i).to_bytes(4, "little")) ^ base)
             & 0xFFFFFFFF, 1 << i)
            for i in range(32)]
    want = (target ^ base) & 0xFFFFFFFF
    acc = tags = 0
    for pos in range(31, -1, -1):
        piv = next((v for v in vecs if v[0] >> pos & 1), None)
        if piv is None:
            continue
        vecs = [(v ^ piv[0], t ^ piv[1]) if v >> pos & 1 else (v, t)
                for v, t in vecs if (v, t) != piv]
        if (acc ^ want) >> pos & 1:
            acc ^= piv[0]
            tags ^= piv[1]
    assert acc == want, "CRC32 4-byte tail map should be invertible"
    return tags.to_bytes(4, "little")


def forge_collision(rng: random.Random, target: bytes) -> bytes:
    """A page != ``target`` with the same CRC32 (and hence weak fp)."""
    while True:
        body = rng.randbytes(PAGE_SIZE - 4)
        page = body + forge_tail(body, zlib.crc32(target) & 0xFFFFFFFF)
        if page != target:
            return page


def _hybrid_fs():
    fs, _ = make_fs(Variant.HYBRID, CFG)
    fs.force_mode(MODE_INLINE)  # always classify inline, confirm on DWQ
    return fs


def _fact_map(fs) -> dict[bytes, int]:
    return {e.fp: e.refcount for e in fs.fact.live_entries().values()
            if e.delete == -1}


class TestForger:
    def test_forged_pages_collide_weak_not_strong(self):
        rng = random.Random(0)
        for _ in range(16):
            target = rng.randbytes(PAGE_SIZE)
            forged = forge_collision(rng, target)
            assert forged != target
            assert zlib.crc32(forged) == zlib.crc32(target)

    def test_nonzero_weak_targets(self):
        # The pipeline remaps genuine CRC 0 to 1 (0 = unregistered
        # sentinel); forged targets in these tests must not land there.
        rng = random.Random(1)
        for _ in range(16):
            assert zlib.crc32(rng.randbytes(PAGE_SIZE)) != 0


class TestNoAliasing:
    """Weak hit + strong miss => the colliding write always stands."""

    @pytest.mark.parametrize("seed", range(8))
    def test_collision_never_aliases(self, seed):
        rng = random.Random(seed)
        fs = _hybrid_fs()
        page_a = rng.randbytes(PAGE_SIZE)
        page_b = forge_collision(rng, page_a)
        ia = fs.create("/a")
        fs.write(ia, 0, page_a)
        ib = fs.create("/b")
        fs.write(ib, 0, page_b)
        fs.daemon.drain()

        # Both contents intact: the false positive fell back to a real
        # write, nothing was aliased onto the weak-hit candidate.
        assert fs.read(ia, 0, PAGE_SIZE) == page_a
        assert fs.read(ib, 0, PAGE_SIZE) == page_b
        st = fs.hybrid_stats()
        assert st["false_positives"] >= 1
        assert st["confirmed_dups"] == 0
        assert fs.space_stats()["physical_pages"] == 2
        check_fs_invariants(fs)

    @pytest.mark.parametrize("seed", range(4))
    def test_collision_among_genuine_duplicates(self, seed):
        """A forged collider and a true duplicate share one weak value:
        the duplicate dedups, the collider never does."""
        rng = random.Random(100 + seed)
        fs = _hybrid_fs()
        page = rng.randbytes(PAGE_SIZE)
        forged = forge_collision(rng, page)
        inos = {}
        for name, data in (("/orig", page), ("/forged", forged),
                           ("/dup", page)):
            ino = fs.create(name)
            fs.write(ino, 0, data)
            inos[name] = ino
        fs.daemon.drain()

        assert fs.read(inos["/forged"], 0, PAGE_SIZE) == forged
        assert fs.read(inos["/dup"], 0, PAGE_SIZE) == page
        st = fs.hybrid_stats()
        assert st["false_positives"] >= 1
        assert st["confirmed_dups"] >= 1
        space = fs.space_stats()
        assert space["logical_pages"] == 3
        assert space["physical_pages"] == 2  # page shared, forged not
        fp = fs.fingerprinter.strong(page)
        assert fs.fact.lookup(fp).found.refcount == 2
        check_fs_invariants(fs)

    @pytest.mark.parametrize("seed", range(3))
    def test_many_way_collision_chain(self, seed):
        """N distinct pages all sharing one weak value: every candidate
        is strong-checked and rejected; N physical pages survive."""
        rng = random.Random(200 + seed)
        fs = _hybrid_fs()
        target = rng.randbytes(PAGE_SIZE)
        pages = [target] + [forge_collision(rng, target) for _ in range(4)]
        assert len({bytes(p) for p in pages}) == len(pages)
        inos = []
        for i, data in enumerate(pages):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, data)
            inos.append(ino)
        fs.daemon.drain()
        for ino, data in zip(inos, pages):
            assert fs.read(ino, 0, PAGE_SIZE) == data
        assert fs.space_stats()["physical_pages"] == len(pages)
        assert fs.hybrid_stats()["confirmed_dups"] == 0
        check_fs_invariants(fs)


class TestDelayedEquivalence:
    """Same writes => same FACT state as the pure delayed pipeline."""

    def _workload(self, seed: int):
        """(path, bytes) writes mixing uniques, duplicates, collisions."""
        rng = random.Random(seed)
        uniques = [rng.randbytes(PAGE_SIZE) for _ in range(6)]
        ops = []
        for i in range(18):
            kind = rng.random()
            if kind < 0.4:
                data = rng.randbytes(PAGE_SIZE)        # fresh unique
            elif kind < 0.75:
                data = rng.choice(uniques)             # genuine duplicate
            else:
                data = forge_collision(rng, rng.choice(uniques))
            nblocks = 1 if rng.random() < 0.7 else 2
            ops.append((f"/f{i}", data * nblocks))
        return ops

    @pytest.mark.parametrize("seed", range(6))
    def test_fact_state_identical_to_pure_delayed(self, seed):
        ops = self._workload(seed)

        hyb = _hybrid_fs()
        for path, data in ops:
            hyb.write(hyb.create(path), 0, data)
        hyb.daemon.drain()
        hyb.settle_weak()      # materialize weak-only (single-ref) blocks

        ref, _ = make_fs(Variant.DELAYED, CFG)
        for path, data in ops:
            ref.write(ref.create(path), 0, data)
        ref.daemon.drain()

        assert _fact_map(hyb) == _fact_map(ref)
        hs, rs = hyb.space_stats(), ref.space_stats()
        for key in ("logical_pages", "physical_pages", "rfc_sum",
                    "unfingerprinted_pages"):
            assert hs[key] == rs[key], key
        for path, data in ops:
            assert hyb.read(hyb.lookup(path), 0, len(data)) == data
        check_fs_invariants(hyb)
        check_fs_invariants(ref)
