"""Tests for the deduplication daemon (Algorithm 1)."""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock


def make_fs(pages=2048, **kw):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=kw.pop("max_inodes", 256), **kw)


def page_of(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * PAGE_SIZE


class TestBasicDedup:
    def test_two_identical_files_share_pages(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        content = page_of(1) + page_of(2) + page_of(3)
        fs.write(a, 0, content)
        fs.write(b, 0, content)
        fs.daemon.drain()
        st = fs.space_stats()
        assert st["logical_pages"] == 6
        assert st["physical_pages"] == 3
        assert fs.read(a, 0, 3 * PAGE_SIZE) == fs.read(b, 0, 3 * PAGE_SIZE)
        check_fs_invariants(fs)

    def test_unique_files_share_nothing(self):
        fs = make_fs()
        for i in range(4):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(i))
        fs.daemon.drain()
        st = fs.space_stats()
        assert st["pages_saved"] == 0
        assert fs.daemon.stats.pages_unique == 4
        assert fs.daemon.stats.pages_duplicate == 0

    def test_intra_file_duplicates(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, page_of(7) * 5)
        fs.daemon.drain()
        st = fs.space_stats()
        assert st["logical_pages"] == 5
        assert st["physical_pages"] == 1
        assert fs.read(ino, 0, 5 * PAGE_SIZE) == page_of(7) * 5
        check_fs_invariants(fs)

    def test_rfc_tracks_references(self):
        fs = make_fs()
        inos = []
        for i in range(4):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(42))
            inos.append(ino)
        fs.daemon.drain()
        live = fs.fact.live_entries()
        assert len(live) == 1
        assert next(iter(live.values())).refcount == 4

    def test_dedup_frees_duplicate_pages(self):
        fs = make_fs()
        used_before_any = fs.statfs()["used_pages"]
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(1) * 4)
        fs.write(b, 0, page_of(1) * 4)
        used_full = fs.statfs()["used_pages"]
        fs.daemon.drain()
        used_after = fs.statfs()["used_pages"]
        assert used_after <= used_full - 3  # ~4 dup pages back (log pages vary)
        assert used_after > used_before_any

    def test_flags_progress_to_complete(self):
        from repro.nova.entries import DEDUPE_COMPLETE, WriteEntry, decode_entry

        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, page_of(1) * 2)
        fs.daemon.drain()
        cache = fs.caches[ino]
        flags = [
            decode_entry(raw).dedupe_flag
            for _a, raw in fs.log.iter_slots(cache.inode.log_head, cache.tail)
            if isinstance(decode_entry(raw), WriteEntry)
        ]
        assert flags and all(f == DEDUPE_COMPLETE for f in flags)
        assert len(fs._pending_pages) == 0

    def test_empty_queue_drain_is_noop(self):
        fs = make_fs()
        assert fs.daemon.drain() == 0


class TestStaleness:
    def test_deleted_file_node_skipped(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, page_of(1))
        fs.unlink("/f")
        fs.daemon.drain()
        assert fs.daemon.stats.nodes_stale == 1
        assert fs.daemon.stats.pages_scanned == 0

    def test_overwritten_pages_skipped(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, page_of(1) * 3)
        fs.write(ino, 0, page_of(2) * 3)  # fully supersedes the first
        fs.daemon.drain()
        assert fs.daemon.stats.pages_stale >= 3
        assert fs.read(ino, 0, 3 * PAGE_SIZE) == page_of(2) * 3
        check_fs_invariants(fs)

    def test_partially_overwritten_entry(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, page_of(1) * 4)
        fs.write(ino, PAGE_SIZE, page_of(2) * 2)  # pages 1-2 replaced
        fs.daemon.drain()
        got = fs.read(ino, 0, 4 * PAGE_SIZE)
        assert got == page_of(1) + page_of(2) * 2 + page_of(1)
        check_fs_invariants(fs)

    def test_dedup_then_overwrite_then_dedup(self):
        fs = make_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page_of(1) * 2)
        fs.write(b, 0, page_of(1) * 2)
        fs.daemon.drain()
        fs.write(a, 0, page_of(3) * 2)
        fs.daemon.drain()
        assert fs.read(a, 0, 2 * PAGE_SIZE) == page_of(3) * 2
        assert fs.read(b, 0, 2 * PAGE_SIZE) == page_of(1) * 2
        check_fs_invariants(fs)


class TestTriggerModes:
    def test_tick_consumes_at_most_m(self):
        fs = make_fs()
        for i in range(10):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(i))
        assert len(fs.dwq) == 10
        assert fs.daemon.tick(3) == 3
        assert len(fs.dwq) == 7
        assert fs.daemon.tick(100) == 7

    def test_drain_limit(self):
        fs = make_fs()
        for i in range(5):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, page_of(i))
        assert fs.daemon.drain(limit=2) == 2
        assert len(fs.dwq) == 3


class TestReorderIntegration:
    def test_hot_chain_reordered_under_collisions(self):
        # Tiny prefix space forces every fingerprint into one ecosystem
        # of chains; repeated duplicates of one page make it hot.
        fs = make_fs(pages=512, max_inodes=128, fact_prefix_bits=9)
        fs.daemon.reorder_min_steps = 2
        fs.daemon.reorder_min_rfc = 2
        # Many distinct pages to build chains, then hammer one content.
        for i in range(40):
            ino = fs.create(f"/u{i}")
            fs.write(ino, 0, page_of(i + 1) + page_of(200))
        fs.daemon.drain()
        assert fs.daemon.stats.pages_duplicate >= 30
        check_fs_invariants(fs)
        # Whether prefixes collide depends on the SHA-1 values; when they
        # do, the colliding entries sit in the IAA and their chains stay
        # intact (checked above).
        occ = fs.fact.occupancy()
        if occ["max_chain"] > 1:
            assert occ["iaa_used"] == fs.fact.stats["iaa_inserts"] > 0
        assert fs.read(fs.lookup("/u3"), PAGE_SIZE, PAGE_SIZE) == page_of(200)


class TestLogGCVeto:
    def test_pending_entries_block_log_gc(self):
        fs = make_fs()
        ino = fs.create("/f")
        fs.write(ino, 0, page_of(1))
        page = next(iter(fs._pending_pages))
        assert not fs.log_page_gc_allowed(page)
        fs.daemon.drain()
        assert fs.log_page_gc_allowed(page)
