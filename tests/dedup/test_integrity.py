"""Tests for the deep-verify integrity audit and READWRITE runner mode."""

import pytest

from repro.cli import main
from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.workloads import DDMode, Mode, run_workload, small_file_job


def build(pages=1024):
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=pages,
                                              max_inodes=128))
    return fs


class TestDeepVerify:
    def test_clean_fs_verifies(self):
        fs = build()
        for i in range(5):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, bytes([i % 3]) * PAGE_SIZE)
        fs.daemon.drain()
        rep = fs.deep_verify()
        assert rep["clean"]
        assert rep["checked"] == 3  # three distinct contents

    def test_detects_silent_corruption(self):
        fs = build()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, bytes([9]) * PAGE_SIZE)
        fs.write(b, 0, bytes([9]) * PAGE_SIZE)
        fs.daemon.drain()
        (idx, ent), = fs.fact.live_entries().items()
        # Bit-rot the shared canonical page behind the filesystem's back.
        fs.dev.write(ent.block * PAGE_SIZE + 77, b"\x00")
        fs.dev.persist(ent.block * PAGE_SIZE + 77, 1)
        rep = fs.deep_verify()
        assert not rep["clean"]
        assert rep["corrupt"] == [(idx, ent.block)]

    def test_verify_after_crash_recovery(self):
        from repro.dedup import DeNovaFS

        fs = build()
        for i in range(4):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, bytes([1]) * PAGE_SIZE)
        fs.daemon.drain()
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = DeNovaFS.mount(fs.dev)
        assert fs2.deep_verify()["clean"]

    def test_verify_costs_are_charged(self):
        fs = build()
        ino = fs.create("/f")
        fs.write(ino, 0, bytes([2]) * PAGE_SIZE)
        fs.daemon.drain()
        t0 = fs.clock.now_ns
        fs.deep_verify()
        # One page read + one SHA-1 (~12 us) at minimum.
        assert fs.clock.now_ns - t0 > 10_000

    def test_cli_deep_flag(self, tmp_path, capsys):
        img = str(tmp_path / "d.img")
        f = tmp_path / "payload"
        f.write_bytes(b"\xcd" * 8192)
        main(["mkfs", img, "--pages", "1024", "--inodes", "64"])
        main(["put", img, "/x", str(f)])
        main(["dedup", img])
        capsys.readouterr()
        assert main(["fsck", img, "--deep"]) == 0
        assert "deep verify" in capsys.readouterr().out


class TestReadWriteMode:
    def test_mixed_mode_runs_both_roles(self):
        fs = build(pages=4096)
        spec = small_file_job(nfiles=40, dup_ratio=0.8, threads=4).with_(
            mode=Mode.READWRITE)
        res = run_workload(fs, spec, dd=DDMode.immediate())
        assert res.files_done == 40
        # Thread 0 overwrote its files; they must hold the new content.
        from repro.failure import check_fs_invariants

        check_fs_invariants(fs)

    def test_readers_unaffected_by_writer_thread(self):
        """Fig. 12's mixed experiment through the generic runner: the
        reader threads' throughput matches a read-only run within noise."""
        def reader_ns(mode):
            fs = build(pages=4096)
            spec = small_file_job(nfiles=30, dup_ratio=0.9, threads=3,
                                  seed=6).with_(mode=mode)
            res = run_workload(fs, spec, dd=DDMode.immediate())
            # Threads 1..2 are readers in both modes.
            return sum(res.per_thread_ns[1:])

        ro = reader_ns(Mode.READ)
        rw = reader_ns(Mode.READWRITE)
        assert rw < 1.25 * ro
