"""Tests for statistics helpers and report rendering."""

import numpy as np
import pytest

from repro.analysis import cdf, latency_breakdown, percentile, render_table
from repro.analysis.stats import render_series


class TestCdf:
    def test_cdf_monotone_and_normalized(self):
        xs, ys = cdf([5.0, 1.0, 3.0, 2.0, 4.0])
        assert list(xs) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert ys[-1] == 1.0
        assert all(np.diff(ys) > 0)

    def test_cdf_empty(self):
        xs, ys = cdf([])
        assert xs.size == 0

    def test_stair_pattern_visible(self):
        """Delayed-mode lingering times cluster at trigger multiples; the
        CDF of clustered data has flat runs (the Fig. 10 stairs)."""
        samples = [250.0] * 50 + [500.0] * 30 + [750.0] * 20
        xs, ys = cdf(samples)
        assert ys[49] == pytest.approx(0.5)
        assert xs[49] == 250.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3.0

    def test_p90(self):
        data = list(range(1, 101))
        assert 89 <= percentile(data, 0.9) <= 91

    def test_empty_is_zero(self):
        assert percentile([], 0.9) == 0.0

    def test_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestBreakdown:
    def test_table4_row(self):
        row = latency_breakdown(write_ns=2850, fp_ns=11780,
                                total_dedup_ns=15440)
        assert row.write_us == pytest.approx(2.85)
        assert row.fp_us == pytest.approx(11.78)
        assert row.other_us == pytest.approx(3.66)
        assert row.dedupe_us == pytest.approx(15.44)
        assert 4 <= row.fp_over_write <= 5

    def test_other_ops_never_negative(self):
        row = latency_breakdown(1000, 5000, 4000)
        assert row.other_us == 0.0


class TestRender:
    def test_table_contains_all_cells(self):
        out = render_table(["name", "value"],
                           [["alpha", 0.5], ["files", 1000000]],
                           title="Demo")
        assert "Demo" in out
        assert "alpha" in out
        assert "0.500" in out
        assert "1,000,000" in out

    def test_table_alignment_consistent(self):
        out = render_table(["a", "b"], [[1, 2], [300, 4000]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1

    def test_series(self):
        out = render_series("fig", [1, 2], [10.5, 20.25], "x", "MB/s")
        assert "fig" in out and "10.5" in out and "20.25" in out
