"""Tests for the Eq. 1-5 analytical model and space overheads."""

import pytest

from repro.analysis import (
    InlineModel,
    dram_index_overhead,
    fact_overhead,
    nvdedup_metadata_overhead,
)
from repro.pm.latency import DRAM, OPTANE_DCPM, PCM

GB = 1 << 30
SIZES = [4096, 16384, 65536, 262144, 1 << 20]


@pytest.fixture
def m():
    return InlineModel(model=OPTANE_DCPM)


class TestEq1:
    def test_tw_much_less_than_tf_at_all_sizes(self, m):
        """Eq. 1 / Fig. 2: fingerprinting dominates at every write size."""
        for size in SIZES:
            assert m.eq1_holds(size), f"Eq.1 fails at {size} bytes"
            assert m.t_f(size) > 2 * m.t_w(size)

    def test_tf_ratio_roughly_constant(self, m):
        """Both scale ~linearly, so the T_f/T_w ratio is stable (Fig. 2's
        near-identical proportions across write sizes)."""
        ratios = [m.t_f(s) / m.t_w(s) for s in SIZES]
        assert max(ratios) / min(ratios) < 2.0

    def test_eq1_would_fail_on_slow_devices(self):
        """On PCM-class write latency the inequality weakens — the reason
        inline dedup made sense before Optane."""
        fast = InlineModel(model=OPTANE_DCPM)
        slow = InlineModel(model=PCM)
        assert (slow.t_f(4096) / slow.t_w(4096)
                < fast.t_f(4096) / fast.t_w(4096))


class TestEq2to5:
    def test_inline_never_beats_baseline(self, m):
        """Eq. 2/3 for all α in [0, 1)."""
        for alpha in (0.0, 0.25, 0.5, 0.75, 0.99):
            for size in (4096, 131072):
                assert m.eq3_holds(size, alpha)
                assert (m.inline_write_time(size, alpha)
                        > m.baseline_write_time(size))

    def test_adaptive_never_beats_baseline(self, m):
        """Eq. 4/5 for all α in [0, 1)."""
        for alpha in (0.0, 0.5, 0.99):
            assert m.eq5_holds(4096, alpha)
            assert (m.adaptive_write_time(4096, alpha)
                    > m.baseline_write_time(4096))

    def test_adaptive_beats_plain_inline_at_low_alpha(self, m):
        """The point of NVDedup's scheme: cheap weak FPs when α is low."""
        assert (m.adaptive_write_time(4096, 0.0)
                < m.inline_write_time(4096, 0.0))

    def test_inline_improves_slightly_with_alpha(self, m):
        """Fig. 8's small upward slope: (1-α)·T_w shrinks."""
        t0 = m.inline_write_time(4096, 0.0)
        t75 = m.inline_write_time(4096, 0.75)
        assert t75 < t0
        # ...but the improvement is small because T_f dominates.
        assert (t0 - t75) / t0 < 0.25

    def test_predicted_slowdown_matches_paper_regime(self, m):
        """Paper: >50% throughput drop for 4 KB files => slowdown > 2x."""
        assert m.inline_slowdown(4096, 0.5) > 2.0

    def test_alpha_validation(self, m):
        with pytest.raises(ValueError):
            m.inline_write_time(4096, 1.0)
        with pytest.raises(ValueError):
            m.eq3_holds(4096, -0.1)


class TestSpaceOverheads:
    def test_fact_overhead_3_2_percent(self):
        """§IV-C: 2 x 64 B per 4 KB block = 3.125% (paper says ~3.2%)."""
        assert fact_overhead(64 * GB) == pytest.approx(0.03125)

    def test_nvdedup_overhead_1_6_percent(self):
        assert nvdedup_metadata_overhead(64 * GB) == pytest.approx(1.6 / 100,
                                                                   rel=0.05)

    def test_dram_index_overhead_0_6_percent(self):
        """§III: 24 B per block ≈ 0.6% of NVM capacity, in DRAM."""
        assert dram_index_overhead(1024 * GB) == pytest.approx(0.6 / 100,
                                                               rel=0.03)

    def test_paper_1tb_example(self):
        """1 TB NVM -> ~6 GB DRAM index = 18.75% of a 32 GB server."""
        dram_needed = dram_index_overhead(1024 * GB) * 1024 * GB
        assert dram_needed == pytest.approx(6 * GB, rel=0.01)
        assert dram_needed / (32 * GB) == pytest.approx(0.1875, rel=0.01)

    def test_overheads_independent_of_device_size(self):
        assert fact_overhead(GB) == pytest.approx(fact_overhead(512 * GB))
