"""Calibration guards: the default cost model must stay anchored to the
paper's published absolute numbers.

These tests intentionally pin the *tuned* constants: if someone adjusts
the latency or CPU model, the anchors below (paper Tables I and IV)
flag any drift outside the justified bands — keeping the simulator's
absolute outputs citable against the paper.
"""

import pytest

from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.pm import OPTANE_DCPM
from repro.workloads import DataGenerator


def per_file_write_us(file_size: int, nfiles: int = 40) -> float:
    fs, _ = make_fs(Variant.BASELINE, Config(device_pages=8192,
                                             max_inodes=128))
    gen = DataGenerator(alpha=0.0, seed=2)
    inos = [fs.create(f"/f{i}") for i in range(nfiles)]
    t0 = fs.clock.now_ns
    for ino in inos:
        fs.write(ino, 0, gen.file_data(file_size))
    return (fs.clock.now_ns - t0) / nfiles / 1000.0


def dedup_us_per_file(file_size: int, nfiles: int = 40):
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=8192,
                                              max_inodes=128))
    gen = DataGenerator(alpha=0.0, seed=2)
    for i in range(nfiles):
        ino = fs.create(f"/f{i}")
        fs.write(ino, 0, gen.file_data(file_size))
    t0 = fs.clock.now_ns
    fs.daemon.drain()
    return (fs.clock.now_ns - t0) / nfiles / 1000.0


class TestTable4Anchors:
    """Paper Table IV absolute values (their testbed, our model)."""

    def test_4kb_write_latency(self):
        # Paper: 2.85 us. Band: within 35%.
        assert per_file_write_us(4096) == pytest.approx(2.85, rel=0.35)

    def test_4kb_dedup_latency(self):
        # Paper: 15.44 us. Band: within 35%.
        assert dedup_us_per_file(4096) == pytest.approx(15.44, rel=0.35)

    def test_128kb_write_latency(self):
        # Paper: 39.86 us. Our per-byte SHA-1/write models don't speed up
        # for large buffers like their hardware did: allow 2x.
        assert 30 <= per_file_write_us(128 * 1024) <= 80

    def test_sha1_throughput_anchor(self):
        # 4 KB / 11.78 us  ==> ~348 MB/s SHA-1 single-core.
        mbps = 4096 / (OPTANE_DCPM.cpu.sha1_cost(4096) / 1e9) / 1e6
        assert mbps == pytest.approx(348, rel=0.15)


class TestTable1Anchors:
    def test_optane_bands(self):
        assert 150 <= OPTANE_DCPM.read_latency_ns <= 350
        assert 60 <= OPTANE_DCPM.write_latency_ns <= 100

    def test_ratio_anchor_eq1(self):
        """The whole paper rests on T_f/T_w >> 1 at 4 KB; pin the band."""
        t_w = OPTANE_DCPM.write_cost(4096)
        t_f = OPTANE_DCPM.cpu.sha1_cost(4096)
        assert 4.0 <= t_f / t_w <= 8.0
