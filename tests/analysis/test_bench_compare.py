"""benchmarks/compare.py: tolerance-band comparison logic."""

import importlib.util
import json
import pathlib
import sys

import pytest

_COMPARE = (pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "compare.py")
spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE)
bench_compare = importlib.util.module_from_spec(spec)
sys.modules["bench_compare"] = bench_compare
spec.loader.exec_module(bench_compare)

compare_docs = bench_compare.compare_docs
iter_numeric_leaves = bench_compare.iter_numeric_leaves
quick_baseline_view = bench_compare.quick_baseline_view


class TestLeafWalk:
    def test_walks_nested_dicts_and_lists(self):
        doc = {"a": {"b": [1, 2.5]}, "c": 3}
        got = dict(iter_numeric_leaves(doc))
        assert got == {("a", "b", "0"): 1.0, ("a", "b", "1"): 2.5,
                       ("c",): 3.0}

    def test_ignores_bools_and_strings(self):
        got = dict(iter_numeric_leaves({"x": True, "y": "5", "z": 1}))
        assert got == {("z",): 1.0}


class TestCompare:
    BASE = {"fig": {"mb_s": [100.0, 200.0]}}

    def test_within_band_passes(self):
        cur = {"fig": {"mb_s": [104.0, 192.0]}}
        assert compare_docs(cur, self.BASE, tolerance=0.05) == []

    def test_regression_flagged_with_drift(self):
        cur = {"fig": {"mb_s": [100.0, 150.0]}}
        v = compare_docs(cur, self.BASE, tolerance=0.05)
        assert len(v) == 1
        assert v[0]["path"] == "fig.mb_s.1"
        assert v[0]["drift"] == pytest.approx(-0.25)

    def test_band_is_symmetric(self):
        # An unexplained speedup invalidates the baseline too.
        cur = {"fig": {"mb_s": [100.0, 260.0]}}
        assert len(compare_docs(cur, self.BASE, tolerance=0.05)) == 1

    def test_missing_current_leaf_is_a_hard_failure(self):
        # A baselined metric the fresh run no longer produces must fail
        # the band check — dropping a series is itself a regression.
        cur = {"fig": {"mb_s": [100.0]}}
        v = compare_docs(cur, self.BASE, tolerance=0.05)
        assert len(v) == 1
        assert v[0]["path"] == "fig.mb_s.1"
        assert v[0]["current"] is None
        assert v[0]["drift"] == float("inf")

    def test_missing_leaf_report_exits_nonzero(self, capsys):
        cur = {"fig": {"mb_s": [100.0]}}
        v = compare_docs(cur, self.BASE, tolerance=0.05)
        assert bench_compare.report(v) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_zero_baseline(self):
        assert compare_docs({"x": 0}, {"x": 0}, 0.01) == []
        v = compare_docs({"x": 5}, {"x": 0}, 0.01)
        assert len(v) == 1


class TestQuickView:
    def test_projects_committed_fig9_shape(self):
        baseline = {"small_file_job": {
            "threads": [1, 2, 4],
            "throughput_mb_s": {"nova": [480.0, 700.0, 632.0],
                                "denova-delayed": [479.0, 699.0, 631.0]},
        }}
        view = quick_baseline_view(baseline)
        assert view["small_file_job"]["nova@T1"] == 480.0
        assert view["small_file_job"]["nova@T4"] == 632.0
        assert view["small_file_job"]["denova-delayed@T4"] == 631.0

    def test_committed_baseline_covers_all_quick_points(self):
        committed = json.loads(
            (_COMPARE.parent / "results" / "fig9_baseline.json").read_text())
        view = quick_baseline_view(committed)
        n = sum(len(v) for v in view.values())
        assert n == len(bench_compare.QUICK_POINTS)
