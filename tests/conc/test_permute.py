"""Schedule-permutation determinism: the tentpole acceptance test.

A mixed read/write/dedup workload is run under several seeded
interleavings (ConcurrentVFS jitter perturbs lock-acquisition order,
worker/client overlap, and steal decisions); the final *logical*
filesystem state must be identical every time — background dedup and
scheduling freedom are unobservable.
"""

import pytest

from repro.conc import fs_state_digest, run_permutations
from repro.core import Config, Variant, make_fs
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.workloads.datagen import DataGenerator

pytestmark = pytest.mark.conc

SEEDS = [1, 2, 3, 4, 5, 6]


def build():
    return make_fs(Variant.IMMEDIATE,
                   Config(device_pages=4096, max_inodes=256, cpus=4))


def mixed_client(vfs, tid, nfiles=6, dup_ratio=0.6):
    """Create, write duplicate-heavy data, read it back, overwrite one
    file — enough op diversity that reordering could plausibly matter."""
    fs = vfs.fs
    holder = f"client-{tid}"
    gen = DataGenerator(dup_ratio, seed=77, stream=tid)

    def body():
        yield from vfs.op(lambda: fs.mkdir(f"/p{tid}"), holder,
                          ns_mode="w")
        inos = []
        for i in range(nfiles):
            data = gen.file_data(PAGE_SIZE)
            ino, _ = yield from vfs.op(
                lambda p=f"/p{tid}/f{i}": fs.create(p), holder, ns_mode="w")
            inos.append(ino)
            yield from vfs.admit(ino, holder)
            yield from vfs.op(
                lambda ino=ino, d=data: fs.write(ino, 0, d, cpu=tid),
                holder, ino=ino)
            vfs.kick_workers()
        for ino in inos:
            yield from vfs.op(
                lambda ino=ino: fs.read(ino, 0, PAGE_SIZE, cpu=tid),
                holder, ino=ino, ino_mode="r")
        # Overwrite the first file so reclaim + FACT dec_rfc runs too.
        redo = gen.file_data(PAGE_SIZE)
        yield from vfs.op(
            lambda: fs.write(inos[0], 0, redo, cpu=tid), holder,
            ino=inos[0])
        vfs.kick_workers()

    return body()


class TestSchedulePermuter:
    def test_final_state_identical_across_seeded_interleavings(self):
        report = run_permutations(
            build, mixed_client, clients=3, seeds=SEEDS, workers=2,
            jitter_ns=4000.0,
            check=lambda fs: check_fs_invariants(fs))
        assert len(report.digests) == len(SEEDS) >= 5
        report.assert_deterministic()
        # The schedules genuinely differed — determinism was not vacuous.
        assert len(set(report.total_ns)) > 1
        assert all(n > 0 for n in report.worker_nodes)

    def test_digest_detects_logical_divergence(self):
        """Guard the guard: the digest must move when contents move."""
        fs, _ = build()
        fs.mkdir("/d")
        ino = fs.create("/d/f")
        fs.write(ino, 0, b"a" * PAGE_SIZE)
        before = fs_state_digest(fs)
        fs.write(ino, 0, b"b" * PAGE_SIZE)
        assert fs_state_digest(fs) != before
        fs.create("/d/g")
        assert fs_state_digest(fs) != before

    def test_digest_ignores_physical_layout(self):
        """Two filesystems with identical logical trees built through
        different op orders (hence different inode numbers and page
        placement) must digest identically."""
        a, _ = build()
        a.mkdir("/d")
        ia = a.create("/d/x")
        a.write(ia, 0, b"q" * PAGE_SIZE)
        a.create("/d/y")

        b, _ = build()
        b.mkdir("/d")
        b.create("/d/y")                     # reversed creation order
        b.create("/scratch")                 # extra churn...
        b.unlink("/scratch")                 # ...then removed
        ib = b.create("/d/x")
        b.write(ib, 0, b"q" * PAGE_SIZE)
        assert fs_state_digest(a) == fs_state_digest(b)

    def test_backpressure_schedules_also_converge(self):
        report = run_permutations(
            build, mixed_client, clients=2, seeds=[10, 11, 12, 13, 14],
            workers=2, jitter_ns=3000.0, max_shard_depth=2)
        report.assert_deterministic()
