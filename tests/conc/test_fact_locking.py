"""FACT bucket-locking property test.

P parallel dedup workers pounding a duplicate-heavy block set must never
double-claim a FACT entry: reference counts end exactly equal to the
live file references (no double-increment), chains stay well-linked (no
orphaned prev/next), and no two live entries claim one block — including
when power fails at every persist event of the concurrent run.
"""

from collections import Counter

import pytest

from repro.core import Config, Variant, make_fs
from repro.dedup.denova import DeNovaFS
from repro.failure import check_fs_invariants, sweep_crash_points
from repro.workloads import run_workload, small_file_job

pytestmark = pytest.mark.conc


def live_block_refs(fs) -> Counter:
    """How many live file pages reference each physical block."""
    refs: Counter = Counter()
    for cache in fs.caches.values():
        if cache.inode.itype != 1:
            continue
        for pgoff, (_a, entry) in cache.index._slots.items():
            refs[entry.block_for(pgoff)] += 1
    return refs


def run_parallel(workers, shards, nfiles=36, threads=3, seed=5):
    fs, dd = make_fs(Variant.IMMEDIATE,
                     Config(device_pages=4096, max_inodes=512, cpus=4))
    res = run_workload(fs, small_file_job(nfiles=nfiles, dup_ratio=0.9,
                                          threads=threads, seed=seed),
                       dd=dd, workers=workers, shards=shards)
    assert res.dd_nodes == nfiles and len(fs.dwq) == 0
    return fs


class TestNoDoubleClaim:
    @pytest.mark.parametrize("workers,shards", [(1, 1), (2, 4), (4, 8)])
    def test_rfc_exactly_matches_references(self, workers, shards):
        """After a drained duplicate-heavy run, every tracked block's RFC
        equals its live reference count — an over-count would prove two
        workers both claimed the same FACT entry for a page."""
        fs = run_parallel(workers, shards)
        refs = live_block_refs(fs)
        entries = fs.fact.live_entries()
        by_block = {}
        for idx, ent in entries.items():
            assert ent.block not in by_block, \
                f"FACT[{by_block[ent.block]}] and FACT[{idx}] both claim " \
                f"block {ent.block}"
            by_block[ent.block] = idx
            assert ent.update_count == 0, \
                f"FACT[{idx}]: staged UC {ent.update_count} leaked"
            assert ent.refcount == refs[ent.block], \
                f"FACT[{idx}] block {ent.block}: RFC={ent.refcount} " \
                f"!= {refs[ent.block]} live references"
        fs.fact.check_chains()  # no orphaned prev/next links

    def test_worker_counts_are_pool_invariant(self):
        """Space savings must not depend on how many workers split the
        queue — a lost or doubled UC would move physical_pages."""
        phys = set()
        for workers, shards in ((1, 1), (2, 4), (3, 8)):
            fs = run_parallel(workers, shards)
            phys.add(fs.space_stats()["physical_pages"])
        assert len(phys) == 1


class TestCrashDuringParallelDedup:
    def test_invariants_hold_at_every_persist_event(self):
        """Crash the concurrent run at persist events (subsampled pre and
        post) and re-mount: recovery must leave RFCs that never
        undercount live references and structurally sound chains."""
        def build():
            fs, dd = make_fs(Variant.IMMEDIATE,
                             Config(device_pages=2048, max_inodes=256,
                                    cpus=2))

            def scenario():
                run_workload(fs, small_file_job(nfiles=10, dup_ratio=0.9,
                                                threads=2, seed=3),
                             dd=dd, workers=2, shards=4)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = DeNovaFS.mount(dev)
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check, stride=23) > 10
