"""Unit tests for the per-CPU sharded DWQ."""

import pytest

from repro.conc.sdwq import ShardedDWQ
from repro.dedup.dwq import DWQ, DWQNode
from repro.nova.layout import Geometry, PAGE_SIZE, Superblock
from repro.pm import DRAM, PMDevice, SimClock
from repro.pm.latency import CpuModel

pytestmark = pytest.mark.conc


def make_sdwq(nshards=4, max_depth=None):
    clock = SimClock()
    return ShardedDWQ(CpuModel(), clock, nshards, max_depth=max_depth), clock


def make_dev_geo():
    dev = PMDevice(256 * PAGE_SIZE, model=DRAM, clock=SimClock())
    geo = Geometry.compute(256, max_inodes=32, dwq_save_pages=2)
    Superblock(dev).format(geo)
    return dev, geo


class TestSharding:
    def test_routing_by_ino(self):
        q, _ = make_sdwq(nshards=4)
        for ino in range(8):
            q.enqueue(DWQNode(ino=ino, entry_addr=ino * 64))
        for s in range(4):
            assert q.shard_len(s) == 2
            assert all(n.ino % 4 == s for n in q._shards[s])

    def test_global_fifo_across_shards(self):
        """dequeue() must honour enqueue order even though storage is
        sharded — the single-threaded drain path behaves like the
        unsharded queue."""
        q, _ = make_sdwq(nshards=3)
        inos = [5, 1, 4, 2, 0, 8, 3]
        for ino in inos:
            q.enqueue(DWQNode(ino=ino, entry_addr=ino))
        assert [q.dequeue().ino for _ in inos] == inos
        assert q.dequeue() is None

    def test_dequeue_shard_is_per_lane(self):
        q, _ = make_sdwq(nshards=2)
        for ino in (0, 1, 2, 3):
            q.enqueue(DWQNode(ino=ino, entry_addr=ino))
        assert q.dequeue_shard(1).ino == 1
        assert q.dequeue_shard(1).ino == 3
        assert q.dequeue_shard(1) is None
        assert len(q) == 2

    def test_steal_from_counts_per_victim(self):
        q, _ = make_sdwq(nshards=2)
        for ino in (0, 2, 4):
            q.enqueue(DWQNode(ino=ino, entry_addr=ino))
        node = q.steal_from(0)
        assert node.ino == 0  # oldest of the victim shard
        assert q.steals == 1
        assert q.steals_by_shard == [1, 0]
        assert q.steal_from(1) is None  # raced-empty victim

    def test_bad_config_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            ShardedDWQ(CpuModel(), clock, 0)
        with pytest.raises(ValueError):
            ShardedDWQ(CpuModel(), clock, 2, max_depth=0)


class TestBackpressure:
    def test_is_full_gates_per_shard(self):
        q, _ = make_sdwq(nshards=2, max_depth=2)
        q.enqueue(DWQNode(ino=0, entry_addr=0))
        q.enqueue(DWQNode(ino=2, entry_addr=1))
        assert q.is_full(0)
        assert not q.is_full(1)
        q.dequeue_shard(0)
        assert not q.is_full(0)

    def test_unbounded_never_full(self):
        q, _ = make_sdwq(nshards=1, max_depth=None)
        for i in range(64):
            q.enqueue(DWQNode(ino=0, entry_addr=i))
        assert not q.is_full(0)


class TestAdoptAndPersistence:
    def test_adopt_preserves_backlog_and_stats(self):
        clock = SimClock()
        old = DWQ(CpuModel(), clock)
        for ino in (3, 1, 2):
            old.enqueue(DWQNode(ino=ino, entry_addr=ino * 8))
        old.dequeue()  # ino 3 gone; stats move
        new = ShardedDWQ(CpuModel(), clock, 4)
        new.adopt(old)
        assert len(old) == 0
        assert len(new) == 2
        assert new.enqueued == 3
        assert new.dequeued == 1
        assert [new.dequeue().ino for _ in range(2)] == [1, 2]

    def test_save_restore_via_base_format(self):
        """The sharded queue saves/restores through the same on-PM format
        as the unsharded one — clean-shutdown images stay compatible."""
        dev, geo = make_dev_geo()
        q, _ = make_sdwq(nshards=3)
        inos = [7, 2, 9, 4]
        for ino in inos:
            q.enqueue(DWQNode(ino=ino, entry_addr=ino * 64))
        q.save(dev, geo)

        fresh, _ = make_sdwq(nshards=3)
        assert fresh.restore(dev, geo) == 4
        assert [fresh.dequeue().ino for _ in inos] == inos
