"""Unit tests for the runtime lock-order (acquisition DAG) validator."""

import pytest

from repro.conc.lockorder import LockOrderValidator, LockOrderViolation

pytestmark = pytest.mark.conc


class TestDagRecording:
    def test_edges_accumulate(self):
        v = LockOrderValidator()
        v.acquiring("a", "ns")
        v.acquiring("a", "ino:1")
        v.acquiring("a", "bucket:7")
        assert v.edge_count() == 3  # ns->ino, ns->bucket, ino->bucket
        order = v.order_snapshot()
        assert "ino:1" in order["ns"]
        assert "bucket:7" in order["ino:1"]

    def test_release_clears_held(self):
        v = LockOrderValidator()
        v.acquiring("a", "ino:1")
        v.released("a", "ino:1")
        # Inverted order is now legal for this holder: no lock held.
        v.acquiring("a", "ino:2")
        v.acquiring("a", "ino:1")  # records ino:2 -> ino:1...
        v.released("a", "ino:1")
        v.released("a", "ino:2")

    def test_holders_are_independent(self):
        v = LockOrderValidator()
        v.acquiring("a", "ns")
        v.acquiring("b", "ino:3")  # b holds nothing else: no edge from ns
        assert v.edge_count() == 0


class TestCycleDetection:
    def test_two_lock_inversion_raises(self):
        v = LockOrderValidator()
        v.acquiring("a", "ino:1")
        v.acquiring("a", "ino:2")  # edge ino:1 -> ino:2
        v.released("a", "ino:2")
        v.released("a", "ino:1")
        v.acquiring("b", "ino:2")
        with pytest.raises(LockOrderViolation) as exc:
            v.acquiring("b", "ino:1")  # would close ino:1->ino:2->ino:1
        assert "ino:1" in str(exc.value) and "ino:2" in str(exc.value)

    def test_three_lock_cycle_raises(self):
        v = LockOrderValidator()
        v.acquiring("a", "x"); v.acquiring("a", "y")
        v.released("a", "y"); v.released("a", "x")
        v.acquiring("b", "y"); v.acquiring("b", "z")
        v.released("b", "z"); v.released("b", "y")
        v.acquiring("c", "z")
        with pytest.raises(LockOrderViolation):
            v.acquiring("c", "x")  # closes x->y->z->x

    def test_reentrant_acquisition_raises(self):
        v = LockOrderValidator()
        v.acquiring("a", "ino:1")
        with pytest.raises(LockOrderViolation):
            v.acquiring("a", "ino:1")

    def test_disabled_validator_is_inert(self):
        v = LockOrderValidator(enabled=False)
        v.acquiring("a", "ino:1")
        v.acquiring("a", "ino:2")
        v.released("a", "ino:2")
        v.released("a", "ino:1")
        v.acquiring("b", "ino:2")
        v.acquiring("b", "ino:1")  # inversion ignored
        assert v.edge_count() == 0

    def test_hierarchy_order_never_raises(self):
        """The documented ns -> ino -> shard -> bucket order is acyclic
        by construction; interleaved holders must all pass."""
        v = LockOrderValidator()
        for h, ino, b in (("w0", 1, 4), ("w1", 2, 4), ("w0", 3, 9)):
            holder = f"client-{h}"
            for name in ("ns", f"ino:{ino}", f"shard:{ino % 2}",
                         f"bucket:{b}"):
                v.acquiring(holder, name)
            for name in (f"bucket:{b}", f"shard:{ino % 2}", f"ino:{ino}",
                         "ns"):
                v.released(holder, name)
        assert v.edge_count() > 0
