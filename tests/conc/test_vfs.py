"""Integration tests: multi-client workloads through ConcurrentVFS."""

import pytest

from repro.core import Config, Variant, make_fs
from repro.failure import check_fs_invariants
from repro.workloads import DDMode, run_workload, small_file_job

pytestmark = pytest.mark.conc


def build(variant, pages=4096, cpus=4):
    return make_fs(variant, Config(device_pages=pages, max_inodes=1024,
                                   cpus=cpus))


class TestWorkerPool:
    def test_pool_processes_everything(self):
        fs, dd = build(Variant.IMMEDIATE)
        res = run_workload(fs, small_file_job(nfiles=48, dup_ratio=0.6,
                                              threads=4),
                           dd=dd, workers=3, shards=4)
        assert res.files_done == 48
        assert res.dd_nodes == 48
        assert len(fs.dwq) == 0
        assert res.workers == 3
        assert res.space["space_saving"] > 0.3
        check_fs_invariants(fs)

    def test_single_worker_matches_legacy_daemon_numbers(self):
        """workers=1 is the paper's single daemon: same files, same dedup
        coverage, same drained end state as the pre-pool runner."""
        fs, dd = build(Variant.IMMEDIATE)
        res = run_workload(fs, small_file_job(nfiles=40, dup_ratio=0.5),
                           dd=dd, workers=1)
        assert res.dd_nodes == 40
        assert res.steals == 0  # one worker owns every shard
        assert len(fs.dwq) == 0

    def test_workers_deterministic_given_seed(self):
        def once():
            fs, dd = build(Variant.IMMEDIATE)
            res = run_workload(fs, small_file_job(nfiles=32, dup_ratio=0.5,
                                                  threads=4, seed=9),
                               dd=dd, workers=2, shards=4)
            return (res.foreground_ns, res.total_ns,
                    res.space["physical_pages"], res.steals)

        assert once() == once()

    def test_delayed_pool_drains(self):
        fs, dd = build(Variant.DELAYED)
        res = run_workload(fs, small_file_job(nfiles=36, dup_ratio=0.5,
                                              threads=3),
                           dd=DDMode.delayed(0.5, 10), workers=2, shards=4)
        assert res.dd_nodes == 36
        assert res.total_ns >= res.foreground_ns
        assert len(fs.dwq) == 0

    def test_per_thread_latency_percentiles(self):
        fs, dd = build(Variant.IMMEDIATE)
        res = run_workload(fs, small_file_job(nfiles=24, threads=3), dd=dd)
        assert len(res.per_thread_latency) == 3
        for lat in res.per_thread_latency:
            assert lat["count"] > 0
            assert 0 < lat["p50_ns"] <= lat["p95_ns"] <= lat["p99_ns"]
            assert lat["p99_ns"] <= lat["max_ns"]


class TestBackpressure:
    def test_full_shard_stalls_writers_then_completes(self):
        fs, dd = build(Variant.IMMEDIATE, cpus=1)
        res = run_workload(fs, small_file_job(nfiles=30, dup_ratio=0.5,
                                              threads=2),
                           dd=dd, workers=1, shards=1, max_shard_depth=1)
        assert res.files_done == 30
        assert res.stalls > 0          # admission control actually engaged
        assert res.dd_nodes == 30      # ...and nothing was lost to it
        assert len(fs.dwq) == 0
        assert (res.metrics["histograms"]["conc.stall_ns"]["count"]
                == res.stalls)

    def test_unbounded_depth_never_stalls(self):
        fs, dd = build(Variant.IMMEDIATE)
        res = run_workload(fs, small_file_job(nfiles=30, dup_ratio=0.5,
                                              threads=2), dd=dd)
        assert res.stalls == 0


class TestContentionMetrics:
    def test_lock_wait_and_shard_metrics_exported(self):
        fs, dd = build(Variant.IMMEDIATE)
        res = run_workload(fs, small_file_job(nfiles=32, threads=4), dd=dd,
                           workers=2, shards=4)
        m = res.metrics
        assert m["histograms"]["conc.lock_wait_ns"]["count"] > 0
        assert "dwq.steals_total" in m["counters"]
        assert all(f"dwq.shard{s}.depth" in m["gauges"] for s in range(4))
        assert m["gauges"]["conc.live_clients"] == 0  # all clients exited
        assert all(m["histograms"][f"conc.t{t}.op_latency_ns"]["count"] > 0
                   for t in range(4))

    def test_steals_happen_on_skewed_shards(self):
        """All files land in one shard; the second worker owns only empty
        shards, so every node it processes is a steal."""
        fs, dd = build(Variant.IMMEDIATE, cpus=2)
        spec = small_file_job(nfiles=20, dup_ratio=0.5, threads=2)
        res = run_workload(fs, spec, dd=dd, workers=2, shards=7)
        assert res.dd_nodes == 20
        # With 7 shards and 2 workers over inos from a small cluster,
        # shard ownership is split 4/3 — at least the drain after
        # foreground completion gives the idle worker stealing chances.
        assert res.steals >= 0  # smoke: counter wired (exact count varies)
        assert res.metrics["counters"]["dwq.steals_total"] == res.steals
