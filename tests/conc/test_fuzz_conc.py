"""Concurrent-mode fuzzing: K merged per-client op streams.

The generator half (fast, always-on): prefix isolation, program-order
preservation, determinism.  The campaign half (``fuzz`` marker, run by
the CI conc job): 3-seed differential crash smoke with 3 clients.
"""

import pytest

from repro.fuzz.diff import FuzzConfig
from repro.fuzz.gen import (GenConfig, generate_concurrent_sequence,
                            generate_sequence, model_after)
from repro.fuzz.runner import FuzzRunner

pytestmark = pytest.mark.conc


class TestConcurrentGenerator:
    def test_clients_isolated_under_private_roots(self):
        ops = generate_concurrent_sequence(seed=3, stream=0, nops=60,
                                           clients=3)
        roots = {"/c0", "/c1", "/c2"}
        for op in ops:
            for p in (op.path, op.path2):
                if p is None or not p.startswith("/"):
                    continue  # global no-ops / relative symlink targets
                assert any(p == r or p.startswith(r + "/") for r in roots), \
                    f"{op.op} escapes client roots: {p}"

    def test_merge_preserves_per_client_program_order(self):
        """Each client's ops appear in the merged trace in exactly the
        order its solo (unmerged) stream generated them."""
        from repro.fuzz.gen import _client_cfg, _prefix_path
        from dataclasses import replace

        clients, seed, stream, nops = 3, 9, 1, 45
        merged = generate_concurrent_sequence(seed=seed, stream=stream,
                                              nops=nops, clients=clients)
        ccfg = _client_cfg(GenConfig(), clients)
        counts = [nops // clients + (1 if c < nops % clients else 0)
                  for c in range(clients)]
        for c in range(clients):
            root = f"/c{c}"
            mine = [op for op in merged
                    if (op.path or "").startswith(root)]
            solo = generate_sequence(seed, stream * clients + c, counts[c],
                                     ccfg)
            # Path-less ops (dedup/remount/crash) cannot be attributed
            # to a client by path, so compare the path-carrying ones.
            expected = [replace(op,
                                path=_prefix_path(op.path, root),
                                path2=_prefix_path(op.path2, root))
                        for op in solo if op.path is not None]
            assert mine[0].op == "mkdir" and mine[0].path == root
            assert mine[1:] == expected

    def test_deterministic_and_seed_sensitive(self):
        a = generate_concurrent_sequence(seed=4, stream=2, nops=40,
                                         clients=2)
        b = generate_concurrent_sequence(seed=4, stream=2, nops=40,
                                         clients=2)
        c = generate_concurrent_sequence(seed=5, stream=2, nops=40,
                                         clients=2)
        assert a == b
        assert a != c

    def test_single_client_degenerates_to_sequential(self):
        assert (generate_concurrent_sequence(seed=7, stream=0, nops=30,
                                             clients=1)
                == generate_sequence(seed=7, stream=0, nops=30))

    def test_no_global_namespace_ops(self):
        ops = generate_concurrent_sequence(seed=1, stream=0, nops=120,
                                           clients=2)
        assert not any(op.op in ("snapshot", "snap_delete") for op in ops)

    def test_merged_trace_is_model_valid(self):
        """Every non-invalid op in the merged trace applies cleanly to a
        fresh model — disjoint namespaces keep clients race-free."""
        ops = generate_concurrent_sequence(seed=11, stream=0, nops=80,
                                           clients=4)
        model = model_after(ops)  # raises nothing; skips invalid ops
        for c in range(4):
            assert model.exists(f"/c{c}")

    def test_bad_client_count_rejected(self):
        with pytest.raises(ValueError):
            generate_concurrent_sequence(seed=0, stream=0, nops=10,
                                         clients=0)


@pytest.mark.fuzz
class TestConcurrentCampaignSmoke:
    """Differential crash smoke over merged multi-client traces."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_three_client_campaign_clean(self, seed):
        cfg = FuzzConfig(seed=seed, total_ops=90, seq_ops=45, budget=4,
                         clients=3)
        result = FuzzRunner(cfg).run()
        assert result.ok, [str(f.violation) for f in result.failures]
        assert result.ops_applied > 0
        assert result.crash_points > 0
