"""Schedule-permutation determinism for the hybrid dedup pipeline.

Three claims, each load-bearing for trusting an *adaptive* policy:

* the final logical filesystem state is identical across seeded
  interleavings and dedup worker-pool sizes — mode switching and weak
  pre-filtering are as unobservable as the classic daemon;
* a fixed (seed, workers) run is byte-reproducible, and ``workers=1``
  byte-identically reproduces the single-daemon execution on repeat;
* controller decisions are a pure function of the observed
  (alpha, depth, contention) window history: replaying the decision
  log through a fresh controller yields the same transitions.
"""

import hashlib

import pytest

from repro.conc import fs_state_digest, run_permutations
from repro.core import Config, Variant, make_fs
from repro.dedup.hybrid import (MODE_INLINE, MODE_OFF, HybridDeNovaFS,
                                HybridPolicy)
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.nova.layout import Superblock
from repro.workloads import run_workload, small_file_job
from repro.workloads.datagen import DataGenerator

pytestmark = [pytest.mark.conc, pytest.mark.hybrid]

SEEDS = [1, 2, 3, 4, 5, 6]


def build():
    return make_fs(Variant.HYBRID,
                   Config(device_pages=4096, max_inodes=256, cpus=4))


def mixed_client(vfs, tid, nfiles=6, dup_ratio=0.6):
    """Create, write duplicate-heavy data, read back, overwrite one."""
    fs = vfs.fs
    holder = f"client-{tid}"
    gen = DataGenerator(dup_ratio, seed=77, stream=tid)

    def body():
        yield from vfs.op(lambda: fs.mkdir(f"/p{tid}"), holder,
                          ns_mode="w")
        inos = []
        for i in range(nfiles):
            data = gen.file_data(PAGE_SIZE)
            ino, _ = yield from vfs.op(
                lambda p=f"/p{tid}/f{i}": fs.create(p), holder, ns_mode="w")
            inos.append(ino)
            yield from vfs.admit(ino, holder)
            yield from vfs.op(
                lambda ino=ino, d=data: fs.write(ino, 0, d, cpu=tid),
                holder, ino=ino)
            vfs.kick_workers()
        for ino in inos:
            yield from vfs.op(
                lambda ino=ino: fs.read(ino, 0, PAGE_SIZE, cpu=tid),
                holder, ino=ino, ino_mode="r")
        redo = gen.file_data(PAGE_SIZE)
        yield from vfs.op(
            lambda: fs.write(inos[0], 0, redo, cpu=tid), holder,
            ino=inos[0])
        vfs.kick_workers()

    return body()


def _run(workers: int, jitter: int):
    """One concurrent hybrid workload; returns the drained filesystem."""
    cfg = Config(device_pages=4096, max_inodes=256, cpus=4)
    fs, dd = make_fs(Variant.HYBRID, cfg)
    spec = small_file_job(nfiles=48, dup_ratio=0.5, threads=4, seed=9)
    run_workload(fs, spec, dd=dd, workers=workers, jitter_seed=jitter)
    fs.daemon.drain()
    return fs


def _image(fs) -> bytes:
    return fs.dev.read_silent(0, fs.dev.size)


class TestScheduleInvariance:
    def test_final_state_identical_across_interleavings(self):
        report = run_permutations(
            build, mixed_client, clients=3, seeds=SEEDS, workers=2,
            jitter_ns=4000.0,
            check=lambda fs: check_fs_invariants(fs))
        assert len(report.digests) == len(SEEDS) >= 5
        report.assert_deterministic()
        assert len(set(report.total_ns)) > 1   # schedules really differed
        assert all(n > 0 for n in report.worker_nodes)

    def test_final_state_identical_across_worker_counts(self):
        digests, reports = [], []
        for workers in (1, 2, 4):
            fs = _run(workers, jitter=5)
            digests.append(fs_state_digest(fs))
            check_fs_invariants(fs)
            fs.unmount()
            rec = HybridDeNovaFS.mount(fs.dev)
            rep = rec.last_recovery
            reports.append((rep.clean, rep.inodes_recovered,
                            rep.orphans_collected))
            digests.append(fs_state_digest(rec))
        assert len(set(digests)) == 1
        assert len(set(reports)) == 1


class TestByteReproducibility:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_same_seed_same_bytes(self, workers):
        a, b = _run(workers, jitter=5), _run(workers, jitter=5)
        ha = hashlib.sha256(_image(a)).hexdigest()
        hb = hashlib.sha256(_image(b)).hexdigest()
        assert ha == hb, f"workers={workers} run not byte-reproducible"

    def test_workers1_is_the_single_daemon(self):
        """The pool of one IS the paper's daemon: repeat runs of the
        workers=1 schedule reproduce the image byte-for-byte, including
        every FACT slot, weak-column value, and policy word."""
        a, b = _run(1, jitter=7), _run(1, jitter=7)
        assert _image(a) == _image(b)
        assert a.controller.decision_log == b.controller.decision_log
        assert a.hybrid_stats() == b.hybrid_stats()


class TestControllerPurity:
    def _drive_transitions(self):
        """Adaptive run with real transitions: INLINE -> OFF -> INLINE."""
        cfg = Config(device_pages=4096, max_inodes=256, cpus=2)
        fs, _ = make_fs(Variant.HYBRID, cfg)
        fs.controller.policy = HybridPolicy(probe_pages=128)
        start_word = fs.controller.modes_word()
        gen = DataGenerator(0.0, seed=13, stream=0)  # all-unique: alpha 0
        for i in range(40):
            ino = fs.create(f"/u{i}")
            fs.write(ino, 0, gen.file_data(16 * PAGE_SIZE))
        fs.daemon.drain()
        return fs, start_word

    def test_decisions_replay_identically(self):
        fs, start_word = self._drive_transitions()
        log = fs.controller.decision_log
        assert fs.controller.transitions >= 2     # OFF entered + probed
        modes_seen = {rec["to"] for rec in log}
        assert MODE_OFF in modes_seen and MODE_INLINE in modes_seen
        replayed = fs.controller.replay(log, initial_modes_word=start_word)
        assert replayed == log

    def test_transitions_persisted_to_superblock(self):
        fs, _ = self._drive_transitions()
        assert Superblock(fs.dev).hybrid_modes == fs.controller.modes_word()

    def test_concurrent_run_log_replays_identically(self):
        fs = _run(2, jitter=11)
        word = sum(MODE_INLINE << (4 * s)
                   for s in range(fs.controller.nshards))
        assert fs.controller.replay(fs.controller.decision_log,
                                    initial_modes_word=word) \
            == fs.controller.decision_log
