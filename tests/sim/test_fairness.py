"""Fairness regression tests for the DES synchronisation primitives.

The concurrency subsystem (repro.conc) leans on three guarantees:

* :class:`Lock` grants strictly in arrival order (FIFO, no barging);
* :class:`Resource` never starves an early requester behind a stream of
  later arrivals;
* :class:`RWLock` is phase-fair — a writer queued behind readers runs
  after at most one read phase, no matter how many new readers keep
  arriving.
"""

from repro.sim import Engine, Lock, Resource, RWLock


class TestLockFifo:
    def test_grant_order_is_arrival_order(self):
        eng = Engine()
        lock = Lock(eng)
        order = []

        def holder(tag, hold_ns):
            yield lock.acquire()
            order.append(tag)
            yield eng.timeout(hold_ns)
            lock.release()

        for i in range(6):
            eng.process(holder(i, 10))
        eng.run()
        assert order == list(range(6))

    def test_no_barging_during_penalty_handoff(self):
        """An acquire arriving mid-hand-off must queue, not steal."""
        eng = Engine()
        lock = Lock(eng, contention_penalty_ns=100.0)
        order = []

        def holder(tag):
            yield lock.acquire()
            order.append(tag)
            yield eng.timeout(5)
            lock.release()

        def late_barger():
            # Arrives while the 0 -> 1 hand-off delay is in flight.
            yield eng.timeout(7)
            yield lock.acquire()
            order.append("barger")
            lock.release()

        eng.process(holder(0))
        eng.process(holder(1))
        eng.process(late_barger())
        eng.run()
        assert order == [0, 1, "barger"]

    def test_interrupted_waiter_does_not_wedge_lock(self):
        eng = Engine()
        lock = Lock(eng)
        got = []

        def first():
            yield lock.acquire()
            yield eng.timeout(10)
            lock.release()

        def doomed():
            try:
                yield lock.acquire()
            finally:
                got.append("doomed-exited")

        def survivor():
            yield lock.acquire()
            got.append("survivor")
            lock.release()

        eng.process(first())
        victim = eng.process(doomed())
        eng.process(survivor())

        def killer():
            yield eng.timeout(5)
            victim.interrupt()

        eng.process(killer())
        eng.run()
        assert "survivor" in got
        assert not lock.locked


class TestResourceStarvation:
    def test_early_waiter_not_starved_by_arrival_stream(self):
        """A queued requester must run even while new requests pour in."""
        eng = Engine()
        res = Resource(eng, capacity=2)
        done = []

        def hog(tag):
            yield res.request()
            yield eng.timeout(50)
            res.release()
            done.append(tag)

        def victim():
            yield eng.timeout(1)
            yield res.request()
            done.append("victim")
            res.release()

        def stream(i):
            # Arrives strictly after the victim queued.
            yield eng.timeout(2 + i)
            yield res.request()
            yield eng.timeout(50)
            res.release()

        eng.process(hog("a"))
        eng.process(hog("b"))
        eng.process(victim())
        for i in range(10):
            eng.process(stream(i))
        eng.run(until=120)
        # The victim queued first, so it gets the first freed slot —
        # ahead of every streamer despite their constant pressure.
        assert "victim" in done
        assert done.index("victim") <= 2


class TestRWLockFairness:
    def test_readers_share(self):
        eng = Engine()
        rw = RWLock(eng)
        concurrently = []

        def reader(tag):
            yield rw.acquire_read()
            concurrently.append(rw.active_readers)
            yield eng.timeout(10)
            rw.release_read()

        for i in range(4):
            eng.process(reader(i))
        eng.run()
        assert max(concurrently) == 4

    def test_writer_behind_reader_stream_eventually_runs(self):
        """The satellite regression: a writer queued behind readers must
        run after the current read phase even when new readers keep
        arriving forever."""
        eng = Engine()
        rw = RWLock(eng)
        timeline = []

        def reader(start, tag):
            yield eng.timeout(start)
            yield rw.acquire_read()
            timeline.append(("r", tag, eng.now))
            yield eng.timeout(20)
            rw.release_read()

        def writer():
            yield eng.timeout(5)
            yield rw.acquire_write()
            timeline.append(("w", "writer", eng.now))
            yield eng.timeout(5)
            rw.release_write()

        # Initial read phase, then an unbounded stream of readers that
        # would starve a barging-tolerant lock.
        eng.process(reader(0, 0))
        eng.process(writer())
        for i in range(12):
            eng.process(reader(6 + 3 * i, 100 + i))
        eng.run()
        kinds = [(k, t) for k, _tag, t in timeline]
        w_time = next(t for k, t in kinds if k == "w")
        # Writer ran right after the first read phase (reader 0 released
        # at t=20), before the stream readers got in.
        assert w_time == 20.0
        later_readers = [t for k, t in kinds if k == "r" and t > 0]
        assert all(t >= w_time for t in later_readers)

    def test_fifo_between_writers(self):
        eng = Engine()
        rw = RWLock(eng)
        order = []

        def writer(tag):
            yield rw.acquire_write()
            order.append(tag)
            yield eng.timeout(10)
            rw.release_write()

        for i in range(5):
            eng.process(writer(i))
        eng.run()
        assert order == list(range(5))

    def test_read_batch_granted_together(self):
        """After a writer, the whole leading run of queued readers is
        admitted as one phase."""
        eng = Engine()
        rw = RWLock(eng)
        grant_times = {}

        def writer():
            yield rw.acquire_write()
            yield eng.timeout(10)
            rw.release_write()

        def reader(tag):
            yield eng.timeout(1)
            yield rw.acquire_read()
            grant_times[tag] = eng.now
            yield eng.timeout(5)
            rw.release_read()

        eng.process(writer())
        for i in range(3):
            eng.process(reader(i))
        eng.run()
        assert len(set(grant_times.values())) == 1

    def test_release_validation(self):
        import pytest

        eng = Engine()
        rw = RWLock(eng)
        with pytest.raises(RuntimeError):
            rw.release_read()
        with pytest.raises(RuntimeError):
            rw.release_write()
        with pytest.raises(ValueError):
            rw.acquire("x")
