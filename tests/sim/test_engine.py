"""Unit tests for the DES kernel."""

import pytest

from repro.sim import Engine, FifoQueue, Interrupt, Lock, Resource


def test_timeout_advances_clock():
    eng = Engine()
    fired = []

    def proc():
        yield eng.timeout(10.0)
        fired.append(eng.now)
        yield eng.timeout(5.0)
        fired.append(eng.now)

    eng.process(proc())
    eng.run()
    assert fired == [10.0, 15.0]
    assert eng.now == 15.0


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_same_time_events_fire_in_creation_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield eng.timeout(5.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        eng.process(proc(tag))
    eng.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_early():
    eng = Engine()
    seen = []

    def proc():
        for _ in range(10):
            yield eng.timeout(1.0)
            seen.append(eng.now)

    eng.process(proc())
    eng.run(until=3.5)
    assert seen == [1.0, 2.0, 3.0]
    assert eng.now == 3.5
    eng.run()  # resumes from where it stopped
    assert seen[-1] == 10.0


def test_run_until_beyond_last_event_sets_now():
    eng = Engine()

    def empty():
        return
        yield  # pragma: no cover - makes this a generator

    eng.process(empty())
    eng.run(until=100.0)
    assert eng.now == 100.0


def test_process_join_returns_value():
    eng = Engine()
    results = []

    def worker():
        yield eng.timeout(3.0)
        return 42

    def parent():
        value = yield eng.process(worker())
        results.append((eng.now, value))

    eng.process(parent())
    eng.run()
    assert results == [(3.0, 42)]


def test_yield_non_event_raises_typeerror():
    eng = Engine()

    def bad():
        yield 5

    eng.process(bad())
    with pytest.raises(TypeError):
        eng.run()


def test_manual_event_wakes_waiter_with_value():
    eng = Engine()
    ev = eng.event("signal")
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    def signaller():
        yield eng.timeout(7.0)
        ev.succeed("hello")

    eng.process(waiter())
    eng.process(signaller())
    eng.run()
    assert got == [(7.0, "hello")]


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    eng.process(waiter())
    ev.fail(ValueError("boom"))
    eng.run()
    assert caught == ["boom"]


def test_all_of_waits_for_every_event():
    eng = Engine()
    done = []

    def worker(dt, tag):
        yield eng.timeout(dt)
        return tag

    def parent():
        procs = [eng.process(worker(dt, tag))
                 for dt, tag in ((5, "a"), (2, "b"), (9, "c"))]
        values = yield eng.all_of(procs)
        done.append((eng.now, values))

    eng.process(parent())
    eng.run()
    assert done == [(9.0, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    eng = Engine()
    got = []

    def parent():
        values = yield eng.all_of([])
        got.append(values)

    eng.process(parent())
    eng.run()
    assert got == [[]]


class TestLock:
    def test_mutual_exclusion(self):
        eng = Engine()
        lock = Lock(eng)
        inside = [0]
        max_inside = [0]

        def critical(tag):
            yield lock.acquire()
            inside[0] += 1
            max_inside[0] = max(max_inside[0], inside[0])
            yield eng.timeout(10.0)
            inside[0] -= 1
            lock.release()

        for t in range(4):
            eng.process(critical(t))
        eng.run()
        assert max_inside[0] == 1
        assert eng.now == 40.0  # fully serialized

    def test_fifo_ordering(self):
        eng = Engine()
        lock = Lock(eng)
        order = []

        def critical(tag):
            yield lock.acquire()
            order.append(tag)
            yield eng.timeout(1.0)
            lock.release()

        for t in range(5):
            eng.process(critical(t))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_release_unheld_raises(self):
        eng = Engine()
        with pytest.raises(RuntimeError):
            Lock(eng).release()

    def test_contention_penalty_slows_handoff(self):
        eng = Engine()
        lock = Lock(eng, contention_penalty_ns=100.0)
        times = []

        def critical():
            yield lock.acquire()
            yield eng.timeout(10.0)
            lock.release()
            times.append(eng.now)

        for _ in range(3):
            eng.process(critical())
        eng.run()
        # Hand-off 1 has 1 remaining waiter -> 200 ns penalty; hand-off 2
        # has none remaining -> 100 ns.
        assert times == [10.0, 220.0, 330.0]
        assert lock.contended_acquisitions == 2

    def test_held_helper_releases_on_exception(self):
        eng = Engine()
        lock = Lock(eng)

        def body():
            yield eng.timeout(1.0)
            raise RuntimeError("inner")

        def proc():
            try:
                yield from lock.held(body())
            except RuntimeError:
                pass

        eng.process(proc())
        eng.run()
        assert not lock.locked


class TestResource:
    def test_capacity_limits_concurrency(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        active = [0]
        peak = [0]

        def user():
            yield res.request()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield eng.timeout(10.0)
            active[0] -= 1
            res.release()

        for _ in range(6):
            eng.process(user())
        eng.run()
        assert peak[0] == 2
        assert eng.now == 30.0  # 6 users / 2 slots * 10

    def test_release_idle_raises(self):
        eng = Engine()
        with pytest.raises(RuntimeError):
            Resource(eng, capacity=1).release()

    def test_bad_capacity(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Resource(eng, capacity=0)


class TestFifoQueue:
    def test_get_blocks_until_put(self):
        eng = Engine()
        q = FifoQueue(eng)
        got = []

        def consumer():
            item = yield q.get()
            got.append((eng.now, item))

        def producer():
            yield eng.timeout(5.0)
            q.put("x")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert got == [(5.0, "x")]

    def test_fifo_order_preserved(self):
        eng = Engine()
        q = FifoQueue(eng)
        for i in range(5):
            q.put(i)
        got = []

        def consumer():
            for _ in range(5):
                item = yield q.get()
                got.append(item)

        eng.process(consumer())
        eng.run()
        assert got == [0, 1, 2, 3, 4]

    def test_peak_length_and_snapshot(self):
        eng = Engine()
        q = FifoQueue(eng)
        for i in range(3):
            q.put(i)
        assert q.peak_length == 3
        assert q.snapshot() == [0, 1, 2]
        assert q.get_nowait() == 0
        assert len(q) == 2

    def test_get_nowait_empty_raises(self):
        eng = Engine()
        with pytest.raises(IndexError):
            FifoQueue(eng).get_nowait()


class TestInterrupt:
    def test_interrupt_wakes_sleeping_process(self):
        eng = Engine()
        log = []

        def sleeper():
            try:
                yield eng.timeout(1000.0)
            except Interrupt as intr:
                log.append((eng.now, intr.cause))

        def waker(proc):
            yield eng.timeout(5.0)
            proc.interrupt("stop")

        p = eng.process(sleeper())
        eng.process(waker(p))
        eng.run()
        assert log == [(5.0, "stop")]

    def test_interrupt_dead_process_is_noop(self):
        eng = Engine()

        def quick():
            yield eng.timeout(1.0)

        p = eng.process(quick())
        eng.run()
        assert not p.is_alive
        p.interrupt()  # must not raise


def test_determinism_full_replay():
    """Two identical simulations produce identical traces."""

    def build():
        eng = Engine()
        lock = Lock(eng)
        q = FifoQueue(eng)
        trace = []

        def producer():
            for i in range(10):
                yield eng.timeout(3.0)
                q.put(i)

        def consumer(tag):
            while True:
                item = yield q.get()
                yield lock.acquire()
                yield eng.timeout(2.0)
                trace.append((eng.now, tag, item))
                lock.release()
                if item == 9:
                    break

        eng.process(producer())
        for tag in range(3):
            eng.process(consumer(tag))
        eng.run(until=200.0)
        return trace

    assert build() == build()
