"""Edge-case tests for the DES kernel beyond the basic suite."""

import pytest

from repro.sim import Engine, FifoQueue, Lock, Process, Resource


class TestEventEdges:
    def test_callback_after_dispatch_runs_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("v")
        eng.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == ["v"]

    def test_event_ok_property(self):
        eng = Engine()
        good = eng.event()
        bad = eng.event()
        assert not good.ok
        good.succeed(1)
        bad.fail(RuntimeError("x"))
        eng.run()
        assert good.ok
        assert not bad.ok
        with pytest.raises(RuntimeError):
            _ = bad.value

    def test_run_not_reentrant(self):
        eng = Engine()

        def proc():
            with pytest.raises(RuntimeError, match="reentrant"):
                eng.run()
            yield eng.timeout(1)

        eng.process(proc())
        eng.run()

    def test_process_return_value_via_value(self):
        eng = Engine()

        def worker():
            yield eng.timeout(1)
            return {"answer": 42}

        p = eng.process(worker())
        eng.run()
        assert p.triggered
        assert p.value == {"answer": 42}
        assert not p.is_alive


class TestResourceEdges:
    def test_release_hands_slot_to_waiter_without_count_change(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def user(tag, hold):
            yield res.request()
            order.append(("in", tag, res.in_use))
            yield eng.timeout(hold)
            res.release()

        eng.process(user("a", 5))
        eng.process(user("b", 5))
        eng.run()
        assert order == [("in", "a", 1), ("in", "b", 1)]
        assert res.total_requests == 2
        assert res.queued_requests == 1
        assert res.in_use == 0

    def test_stats_without_contention(self):
        eng = Engine()
        res = Resource(eng, capacity=4)

        def user():
            yield res.request()
            yield eng.timeout(1)
            res.release()

        for _ in range(3):
            eng.process(user())
        eng.run()
        assert res.queued_requests == 0


class TestLockEdges:
    def test_lock_queue_length(self):
        eng = Engine()
        lock = Lock(eng)
        lengths = []

        def holder():
            yield lock.acquire()
            yield eng.timeout(10)
            lengths.append(lock.queue_length)
            lock.release()

        def waiter():
            yield lock.acquire()
            lock.release()

        eng.process(holder())
        eng.process(waiter())
        eng.process(waiter())
        eng.run()
        assert lengths == [2]
        assert not lock.locked

    def test_acquisition_counters(self):
        eng = Engine()
        lock = Lock(eng)

        def quick():
            yield lock.acquire()
            lock.release()

        for _ in range(5):
            eng.process(quick())
        eng.run()
        assert lock.acquisitions == 5
        # All five boot at t=0: the first wins, four queue behind it.
        assert lock.contended_acquisitions == 4


class TestQueueEdges:
    def test_put_to_waiting_getter_skips_buffer(self):
        eng = Engine()
        q = FifoQueue(eng)
        got = []

        def consumer():
            got.append((yield q.get()))

        eng.process(consumer())
        eng.run()  # consumer parks
        q.put("direct")
        eng.run()
        assert got == ["direct"]
        assert q.peak_length == 0  # never buffered

    def test_multiple_getters_fifo(self):
        eng = Engine()
        q = FifoQueue(eng)
        got = []

        def consumer(tag):
            item = yield q.get()
            got.append((tag, item))

        for t in range(3):
            eng.process(consumer(t))
        eng.run()
        for i in ("x", "y", "z"):
            q.put(i)
        eng.run()
        assert got == [(0, "x"), (1, "y"), (2, "z")]

    def test_counters(self):
        eng = Engine()
        q = FifoQueue(eng)
        q.put(1)
        q.put(2)
        q.get_nowait()
        assert q.puts == 2
        assert q.gets == 1
        assert len(q) == 1


class TestDeterminismUnderInterrupts:
    def test_interrupt_mid_queue_wait(self):
        eng = Engine()
        q = FifoQueue(eng)
        from repro.sim import Interrupt

        outcome = []

        def consumer():
            try:
                yield q.get()
                outcome.append("got")
            except Interrupt:
                outcome.append("interrupted")

        p = eng.process(consumer())

        def killer():
            yield eng.timeout(5)
            p.interrupt()

        eng.process(killer())
        eng.run()
        assert outcome == ["interrupted"]
        # The queue no longer delivers to the dead consumer.
        q.put("late")
        eng.run()
        assert len(q) == 0 or q.get_nowait() == "late"
