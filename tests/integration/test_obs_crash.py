"""Observability under fire: metrics stay sane through crash + recovery.

The scenario the obs layer exists for — run a mixed workload, crash the
device mid-dedup, recovery-mount, and check the metrics a postmortem
would lean on: recovery phase timings recorded, no negative gauges, DWQ
residency histogram populated, exporters still produce valid output.
"""

import json

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants, run_with_crash
from repro.nova import PAGE_SIZE
from repro.obs import to_prometheus
from repro.pm import DRAM, PMDevice, SimClock
from repro.workloads import run_workload, small_file_job


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


def assert_metrics_sane(fs):
    snap = fs.obs.snapshot()
    for name, v in snap["counters"].items():
        assert v >= 0, f"negative counter {name}={v}"
    for name, v in snap["gauges"].items():
        assert v >= 0, f"negative gauge {name}={v}"
    # Snapshot and Prometheus rendering must survive whatever state
    # recovery left behind.
    json.dumps(snap)
    text = to_prometheus(snap)
    assert text.endswith("\n")
    return snap


class TestWorkloadMetrics:
    def test_mixed_workload_populates_histograms(self):
        dev = PMDevice(4096 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=256)
        res = run_workload(fs, small_file_job(nfiles=60, dup_ratio=0.5))
        snap = assert_metrics_sane(fs)
        assert res.metrics == snap
        assert snap["counters"]["fs.writes_total"] >= 60
        assert snap["histograms"]["dwq.residency_ns"]["count"] > 0
        assert snap["histograms"]["fact.lookup_steps"]["count"] > 0
        assert snap["histograms"]["fs.write_latency_ns"]["count"] >= 60
        assert snap["counters"]["sim.events_dispatched_total"] > 0


class TestCrashRecoveryMetrics:
    def build(self):
        dev = PMDevice(2048 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=64)
        for i in range(8):
            ino = fs.create(f"/f{i}")
            # Half the pages duplicate across files -> real dedup work.
            fs.write(ino, 0, page_of(0xAB) + page_of(i))

        def scenario():
            fs.daemon.drain()

        return dev, scenario

    def test_crash_mid_dedup_then_recover(self):
        out = run_with_crash(self.build, point=5)
        assert out.crashed, "scenario finished before the crash point"
        fs2 = DeNovaFS.mount(out.dev)
        check_fs_invariants(fs2)
        snap = assert_metrics_sane(fs2)

        # Recovery was traced: the mount span and its phases recorded
        # nonzero charged time.
        hists = snap["histograms"]
        assert hists["recovery.mount_latency_ns"]["count"] == 1
        assert hists["recovery.mount_latency_ns"]["sum"] > 0
        assert hists["recovery.log_replay_latency_ns"]["count"] == 1
        span_names = {e.name for e in fs2.obs.tracer.events}
        assert {"recovery.mount", "recovery.log_replay",
                "recovery.free_list", "recovery.dedup"} <= span_names

        # The interrupted dedup work was requeued; draining it populates
        # the DWQ residency histogram on the recovered instance.
        fs2.daemon.drain()
        assert hists_after_drain(fs2)["dwq.residency_ns"]["count"] > 0
        assert_metrics_sane(fs2)

    def test_crash_sweep_points_all_sane(self):
        for point in (2, 7, 12):
            out = run_with_crash(self.build, point=point)
            if not out.crashed:
                break
            fs2 = DeNovaFS.mount(out.dev)
            check_fs_invariants(fs2)
            snap = assert_metrics_sane(fs2)
            assert snap["histograms"]["recovery.mount_latency_ns"][
                "count"] == 1
            fs2.daemon.drain()
            assert_metrics_sane(fs2)


def hists_after_drain(fs):
    return fs.obs.snapshot()["histograms"]
