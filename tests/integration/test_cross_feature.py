"""Cross-feature interaction tests: the places bugs hide.

Each test combines at least two of {dedup daemon, reflink/snapshots,
thorough GC, rename journal, hard links, crash injection} and checks the
full invariant set.
"""

import pytest

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock
from repro.workloads import DataGenerator


def make_fs(pages=4096):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def page_of(tag):
    return bytes([tag & 0xFF]) * PAGE_SIZE


class TestSnapshotCrashes:
    def test_crash_sweep_during_snapshot(self):
        """Crash at every persistence event of a snapshot: live data is
        never harmed, partial snapshots are consistent and deletable."""
        def build():
            fs = make_fs(pages=2048)
            fs.mkdir("/work")
            for i in range(3):
                ino = fs.create(f"/work/f{i}")
                fs.write(ino, 0, page_of(i) * 2)
            fs.daemon.drain()

            def scenario():
                fs.snapshot("snap")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = DeNovaFS.mount(dev)
            for i in range(3):
                ino = fs2.lookup(f"/work/f{i}")
                assert fs2.read(ino, 0, 2 * PAGE_SIZE) == page_of(i) * 2
            check_fs_invariants(fs2)
            # A partial snapshot (if any) can be torn down cleanly.
            if "snap" in fs2.list_snapshots():
                fs2.delete_snapshot("snap")
                check_fs_invariants(fs2)
            # And a fresh snapshot completes afterwards.
            rep = fs2.snapshot("retry")
            assert rep["files"] == 3
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check, stride=3) > 5

    def test_crash_sweep_during_snapshot_delete(self):
        def build():
            fs = make_fs(pages=2048)
            fs.mkdir("/work")
            for i in range(2):
                ino = fs.create(f"/work/f{i}")
                fs.write(ino, 0, page_of(i))
            fs.daemon.drain()
            fs.snapshot("doomed")

            def scenario():
                fs.delete_snapshot("doomed")

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = DeNovaFS.mount(dev)
            for i in range(2):
                assert fs2.read(fs2.lookup(f"/work/f{i}"), 0,
                                PAGE_SIZE) == page_of(i)
            check_fs_invariants(fs2)
            fs2.scrub()
            check_fs_invariants(fs2)

        assert sweep_crash_points(build, check, stride=2) > 3


class TestGCInteractions:
    def test_gc_after_snapshot_churn(self):
        fs = make_fs()
        ino = fs.create("/hot")
        for i in range(150):
            fs.write(ino, 0, page_of(i))
            if i % 50 == 25:
                fs.daemon.drain()
                fs.snapshot(f"s{i}")
        fs.daemon.drain()
        rep = fs.gc(ino)
        assert "pages_reclaimed" in rep or "skipped" in rep
        # Snapshot contents unaffected by compacting the live file's log.
        for i in (25, 75, 125):
            snap = fs.read(fs.lookup(f"/.snapshots/s{i}/hot"), 0, PAGE_SIZE)
            assert snap == page_of(i)
        check_fs_invariants(fs)

    def test_gc_of_reflinked_files(self):
        fs = make_fs()
        src = fs.create("/src")
        for i in range(120):
            fs.write(src, 0, page_of(i % 7) * 2)
        fs.daemon.drain()
        fs.reflink("/src", "/twin")
        fs.gc(src)
        assert fs.read(fs.lookup("/twin"), 0, 2 * PAGE_SIZE) == \
            fs.read(src, 0, 2 * PAGE_SIZE)
        check_fs_invariants(fs)


class TestRenameDedupInterplay:
    def test_rename_while_dedup_pending(self):
        fs = make_fs()
        fs.mkdir("/a")
        fs.mkdir("/b")
        ino = fs.create("/a/f")
        fs.write(ino, 0, page_of(3) * 2)
        assert len(fs.dwq) == 1
        fs.rename("/a/f", "/b/g")   # node's ino is unchanged
        fs.daemon.drain()
        assert fs.daemon.stats.nodes_processed == 1
        assert fs.read(fs.lookup("/b/g"), 0, 2 * PAGE_SIZE) == page_of(3) * 2
        check_fs_invariants(fs)

    def test_hardlink_then_dedup_then_unlink_chain(self):
        fs = make_fs()
        a = fs.create("/a")
        fs.write(a, 0, page_of(8))
        fs.link("/a", "/b")
        fs.link("/a", "/c")
        other = fs.create("/other")
        fs.write(other, 0, page_of(8))
        fs.daemon.drain()
        assert fs.space_stats()["physical_pages"] == 1
        fs.unlink("/a")
        fs.unlink("/b")
        fs.unlink("/other")
        assert fs.read(fs.lookup("/c"), 0, PAGE_SIZE) == page_of(8)
        check_fs_invariants(fs)


class TestSoak:
    def test_deterministic_soak(self):
        """A few thousand mixed operations with periodic crashes,
        remounts, GC, scrub and snapshots — the long-haul invariant run."""
        import random

        rng = random.Random(1234)
        dev = PMDevice(8192 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=1024)
        gen = DataGenerator(alpha=0.5, seed=99, dup_pool_size=8)
        oracle: dict[str, bytes] = {}
        counter = [0]

        def new_path():
            counter[0] += 1
            return f"/s{counter[0]}"

        for step in range(900):
            roll = rng.random()
            live = sorted(oracle)
            if roll < 0.35 or not live:
                path = new_path()
                data = gen.file_data(rng.randrange(1, 3 * PAGE_SIZE))
                fs.write(fs.create(path), 0, data)
                oracle[path] = data
            elif roll < 0.55:
                path = rng.choice(live)
                data = gen.file_data(rng.randrange(1, 2 * PAGE_SIZE))
                fs.write(fs.lookup(path), 0, data)
                old = oracle[path]
                oracle[path] = data + old[len(data):]
            elif roll < 0.70:
                path = rng.choice(live)
                fs.unlink(path)
                del oracle[path]
            elif roll < 0.80:
                path = rng.choice(live)
                dst = new_path()
                fs.reflink(path, dst)
                oracle[dst] = oracle[path]
            elif roll < 0.90:
                fs.daemon.drain(limit=rng.randrange(1, 30))
            elif roll < 0.96:
                path = rng.choice(live)
                fs.gc(fs.lookup(path))
            else:
                fs.dev.crash()
                fs.dev.recover_view()
                fs = DeNovaFS.mount(fs.dev)
            if step % 150 == 149:
                fs.daemon.drain()
                fs.scrub()
                check_fs_invariants(fs)
                for path, data in oracle.items():
                    ino = fs.lookup(path)
                    assert fs.read(ino, 0, len(data) + 1) == data, path
        fs.daemon.drain()
        check_fs_invariants(fs)
        st = fs.space_stats()
        assert st["space_saving"] > 0.2  # dedup paid off across the soak
