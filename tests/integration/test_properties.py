"""Property-based tests (hypothesis) on the core invariants.

The central property: DeNovaFS under any operation sequence — including
background dedup at arbitrary points and full crash/recover cycles —
behaves exactly like a trivial in-memory filesystem oracle.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.nova.fs import NoSpace
from repro.pm import DRAM, PMDevice, SimClock

MAX_FILE = 6 * PAGE_SIZE


def _content(draw_bytes: bytes, reps: int) -> bytes:
    return (draw_bytes * reps)[:MAX_FILE]


class DeNovaOracleMachine(RuleBasedStateMachine):
    """Random ops on DeNovaFS vs a dict oracle, with crashes and dedup."""

    paths = Bundle("paths")

    @initialize()
    def setup(self):
        self.dev = PMDevice(4096 * PAGE_SIZE, model=DRAM, clock=SimClock())
        self.fs = DeNovaFS.mkfs(self.dev, max_inodes=128)
        self.oracle: dict[str, bytearray] = {}
        self.counter = 0

    # -- operations -------------------------------------------------------------

    @rule(target=paths)
    def create(self):
        self.counter += 1
        path = f"/f{self.counter}"
        self.fs.create(path)
        self.oracle[path] = bytearray()
        return path

    @rule(path=paths,
          offset=st.integers(0, 3 * PAGE_SIZE),
          pattern=st.binary(min_size=1, max_size=64),
          reps=st.integers(1, 200))
    def write(self, path, offset, pattern, reps):
        if path not in self.oracle:
            return
        data = _content(pattern, reps)
        if offset + len(data) > MAX_FILE:
            offset = max(0, MAX_FILE - len(data))
        try:
            ino = self.fs.lookup(path)
            self.fs.write(ino, offset, data)
        except NoSpace:
            self.fs.daemon.drain()  # free duplicate pages, then give up
            return
        buf = self.oracle[path]
        if len(buf) < offset:
            buf.extend(bytes(offset - len(buf)))
        buf[offset:offset + len(data)] = data

    @rule(path=paths, size=st.integers(0, MAX_FILE))
    def truncate(self, path, size):
        if path not in self.oracle:
            return
        self.fs.truncate(self.fs.lookup(path), size)
        buf = self.oracle[path]
        if size <= len(buf):
            del buf[size:]
        else:
            buf.extend(bytes(size - len(buf)))

    @rule(path=paths)
    def unlink(self, path):
        if path not in self.oracle:
            return
        self.fs.unlink(path)
        del self.oracle[path]

    @rule(target=paths, path=paths)
    def reflink(self, path):
        self.counter += 1
        dst = f"/r{self.counter}"
        if path not in self.oracle:
            # Keep the bundle entry valid: fall back to a fresh file.
            self.fs.create(dst)
            self.oracle[dst] = bytearray()
            return dst
        self.fs.reflink(path, dst)
        self.oracle[dst] = bytearray(self.oracle[path])
        return dst

    @rule(path=paths)
    def thorough_gc(self, path):
        if path not in self.oracle:
            return
        self.fs.gc(self.fs.lookup(path))

    @rule()
    def gc_root(self):
        self.fs.gc(1)

    @rule()
    def drain_daemon(self):
        self.fs.daemon.drain()

    @rule(limit=st.integers(1, 3))
    def partial_drain(self, limit):
        self.fs.daemon.drain(limit=limit)

    @rule()
    def crash_and_recover(self):
        self.dev.crash()
        self.dev.recover_view()
        self.fs = DeNovaFS.mount(self.dev)

    @rule()
    def clean_remount(self):
        self.fs.unmount()
        self.fs = DeNovaFS.mount(self.dev)

    @rule()
    def scrub(self):
        self.fs.scrub()

    # -- properties ----------------------------------------------------------------

    @rule(path=paths)
    def check_one_file(self, path):
        if path not in self.oracle:
            assert not self.fs.exists(path)
            return
        ino = self.fs.lookup(path)
        expected = bytes(self.oracle[path])
        assert self.fs.stat(ino).size == len(expected)
        assert self.fs.read(ino, 0, len(expected) + 1) == expected

    @invariant()
    def fs_invariants_hold(self):
        if getattr(self, "fs", None) is not None:
            check_fs_invariants(self.fs)

    def teardown(self):
        if getattr(self, "fs", None) is None:
            return
        self.fs.daemon.drain()
        for path, expected in self.oracle.items():
            ino = self.fs.lookup(path)
            assert self.fs.read(ino, 0, MAX_FILE + 1) == bytes(expected)
        check_fs_invariants(self.fs)


TestDeNovaOracle = DeNovaOracleMachine.TestCase
TestDeNovaOracle.settings = settings(
    max_examples=20,
    stateful_step_count=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestWriteReadProperties:
    @given(chunks=st.lists(
        st.tuples(st.integers(0, 4 * PAGE_SIZE),
                  st.binary(min_size=1, max_size=300)),
        min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_overlapping_writes_linearize(self, chunks):
        """Any sequence of overlapping writes reads back like a buffer."""
        dev = PMDevice(2048 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=16)
        ino = fs.create("/f")
        oracle = bytearray()
        for offset, data in chunks:
            fs.write(ino, offset, data)
            if len(oracle) < offset:
                oracle.extend(bytes(offset - len(oracle)))
            oracle[offset:offset + len(data)] = data
        fs.daemon.drain()
        assert fs.read(ino, 0, len(oracle) + 10) == bytes(oracle)
        check_fs_invariants(fs)

    @given(alpha=st.floats(0.0, 1.0), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_dedup_never_corrupts_any_alpha(self, alpha, seed):
        """Whatever the duplicate ratio, contents round-trip exactly."""
        from repro.workloads import DataGenerator

        dev = PMDevice(2048 * PAGE_SIZE, model=DRAM, clock=SimClock())
        fs = DeNovaFS.mkfs(dev, max_inodes=64)
        gen = DataGenerator(alpha=alpha, seed=seed, dup_pool_size=4)
        files = {}
        for i in range(6):
            path = f"/f{i}"
            data = gen.file_data(2 * PAGE_SIZE)
            ino = fs.create(path)
            fs.write(ino, 0, data)
            files[ino] = data
        fs.daemon.drain()
        for ino, data in files.items():
            assert fs.read(ino, 0, len(data)) == data
        check_fs_invariants(fs)

    @given(seed=st.integers(0, 2**16), point=st.integers(1, 60))
    @settings(max_examples=25, deadline=None)
    def test_random_crash_point_recovers(self, seed, point):
        """Crash at an arbitrary persistence event under a dedup-heavy
        workload; recovery restores a consistent filesystem."""
        from repro.failure.injector import run_with_crash
        from repro.workloads import DataGenerator

        def build():
            dev = PMDevice(2048 * PAGE_SIZE, model=DRAM, clock=SimClock())
            fs = DeNovaFS.mkfs(dev, max_inodes=64)
            gen = DataGenerator(alpha=0.7, seed=seed, dup_pool_size=2)

            def scenario():
                for i in range(4):
                    ino = fs.create(f"/f{i}")
                    fs.write(ino, 0, gen.file_data(2 * PAGE_SIZE))
                    if i % 2:
                        fs.daemon.drain()
                fs.daemon.drain()

            return dev, scenario

        outcome = run_with_crash(build, point, phase="pre", mode="torn",
                                 seed=seed)
        if not outcome.crashed:
            return
        fs = DeNovaFS.mount(outcome.dev)
        check_fs_invariants(fs)
        fs.daemon.drain()
        check_fs_invariants(fs)


class TestAllocatorProperties:
    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(1, 6),
                                  st.integers(0, 2)),
                        max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_conservation_and_disjointness(self, ops):
        from repro.pm import AllocError, PageAllocator

        alloc = PageAllocator(0, 120, cpus=3)
        live = []
        for is_alloc, count, cpu in ops:
            if is_alloc or not live:
                try:
                    start = alloc.alloc(count, cpu)
                except AllocError:
                    continue
                live.append((start, count))
            else:
                start, count = live.pop()
                alloc.free(start, count, cpu)
            held = sum(c for _, c in live)
            assert alloc.free_pages + held == 120
        spans = sorted(live)
        for (s1, c1), (s2, _) in zip(spans, spans[1:]):
            assert s1 + c1 <= s2
