"""Recovery-path equivalence: every way of coming back up converges.

Build the same workload deterministically, then reach a mounted
filesystem four ways — checkpointed clean remount, full-scan clean
remount, parallel full-scan remount, and post-crash recovery — and
require the identical logical-state digest from all of them.
"""

import pytest

from repro.conc import fs_state_digest
from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock
from repro.workloads import DataGenerator

pytestmark = pytest.mark.recovery


def build_fs(seed=7, cpus=2):
    dev = PMDevice(4096 * PAGE_SIZE, model=DRAM, clock=SimClock())
    fs = DeNovaFS.mkfs(dev, max_inodes=128, cpus=cpus)
    gen = DataGenerator(alpha=0.5, seed=seed)
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    for i in range(20):
        ino = fs.create(f"/a/f{i}")
        fs.write(ino, 0, gen.file_data(2 * PAGE_SIZE))
    fs.symlink("/a/f3", "/s")
    fs.link("/a/f4", "/a/b/hard")
    fs.rename("/a/f0", "/a/b/g0")  # cross-directory (journaled)
    fs.unlink("/a/f1")
    fs.truncate(fs.lookup("/a/f2"), PAGE_SIZE)
    fs.daemon.drain()
    return fs


def test_all_recovery_paths_converge(tmp_path):
    fs = build_fs()
    digest_live = fs_state_digest(fs)
    fs.unmount()
    path = tmp_path / "clean.img"
    fs.dev.save_image(path)

    digests = {}
    reports = {}
    for label, kw in (
        ("checkpoint", {}),
        ("full-scan", {"use_checkpoint": False}),
        ("full-scan-parallel", {"use_checkpoint": False,
                                "recovery_workers": 4}),
    ):
        dev = PMDevice.load_image(path, clock=SimClock())
        mounted = DeNovaFS.mount(dev, cpus=2, **kw)
        check_fs_invariants(mounted)
        digests[label] = fs_state_digest(mounted)
        reports[label] = mounted.last_recovery

    # Post-crash recovery of the *same* (fully drained) workload.
    crashed = build_fs()
    crashed.dev.crash()
    crashed.dev.recover_view()
    recovered = DeNovaFS.mount(crashed.dev, cpus=2)
    check_fs_invariants(recovered)
    digests["crash"] = fs_state_digest(recovered)

    assert "checkpoint" in reports["checkpoint"].extra
    assert "checkpoint" not in reports["full-scan"].extra
    assert not recovered.last_recovery.clean
    assert set(digests.values()) == {digest_live}, digests


def test_checkpoint_remount_survives_further_mutation(tmp_path):
    """State stays convergent across a second mutate/remount cycle."""
    fs = build_fs()
    fs.unmount()
    path = tmp_path / "gen2.img"
    fs.dev.save_image(path)
    dev = PMDevice.load_image(path, clock=SimClock())
    fs2 = DeNovaFS.mount(dev, cpus=2)
    ino = fs2.create("/a/new")
    fs2.write(ino, 0, b"generation 2")
    fs2.daemon.drain()
    digest = fs_state_digest(fs2)
    fs2.unmount()
    fs2.dev.save_image(path)
    dev3 = PMDevice.load_image(path, clock=SimClock())
    fs3 = DeNovaFS.mount(dev3, cpus=2)
    assert "checkpoint" in fs3.last_recovery.extra
    assert fs_state_digest(fs3) == digest
    check_fs_invariants(fs3)
