"""End-to-end scenarios: realistic multi-phase workloads on DeNova.

These are the "downstream user" stories the paper's introduction
motivates (backup servers, VM-image stores, container layers): long
sequences of duplicate-heavy ingest, mutation, deletion, crashes and
maintenance, validated for content fidelity and space behaviour at
every phase.
"""

import pytest

from repro.core import Config, Variant, make_fs
from repro.dedup import DeNovaFS
from repro.failure import check_fs_invariants
from repro.nova import PAGE_SIZE
from repro.workloads import DataGenerator


def build(pages=16384, inodes=2048):
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=pages,
                                              max_inodes=inodes))
    return fs


class TestBackupServer:
    """Nightly incremental backups: heavy cross-generation duplication."""

    def test_incremental_backup_generations(self):
        fs = build()
        gen_data = DataGenerator(alpha=0.0, seed=1)
        # The "source dataset": 20 files of 4 pages.
        dataset = {f"file{i}": bytearray(gen_data.file_data(4 * PAGE_SIZE))
                   for i in range(20)}
        mutator = DataGenerator(alpha=0.0, seed=2, stream=7)

        usage = []
        physical = []
        for generation in range(4):
            if generation:
                # Mutate ~10% of pages between backup runs.
                for name in list(dataset)[:2]:
                    page = generation % 4
                    dataset[name][page * PAGE_SIZE:(page + 1) * PAGE_SIZE] \
                        = mutator.file_data(PAGE_SIZE)
            fs.mkdir(f"/backup{generation}")
            for name, content in dataset.items():
                ino = fs.create(f"/backup{generation}/{name}")
                fs.write(ino, 0, bytes(content))
            fs.daemon.drain()
            usage.append(fs.statfs()["used_pages"])
            physical.append(fs.space_stats()["physical_pages"])

        # A later generation's *data* cost is exactly its mutated pages
        # (2 per generation); the remaining page cost is per-inode log
        # metadata, bounded by the file count.
        gen0 = usage[0]
        for g in (2, 3):
            assert physical[g] - physical[g - 1] == 2, \
                f"gen {g} stored {physical[g] - physical[g - 1]} new pages"
            assert usage[g] - usage[g - 1] <= 2 + len(dataset) + 2, \
                "metadata cost exceeded one log page per file"
            assert usage[g] - usage[g - 1] < 0.3 * gen0
        # All generations read back exactly (spot-check the last).
        for name, content in dataset.items():
            ino = fs.lookup(f"/backup3/{name}")
            assert fs.read(ino, 0, 4 * PAGE_SIZE) == bytes(content)
        check_fs_invariants(fs)

    def test_retention_expiry_frees_space(self):
        fs = build()
        gen_data = DataGenerator(alpha=0.0, seed=3)
        dataset = [gen_data.file_data(2 * PAGE_SIZE) for _ in range(15)]
        for g in range(3):
            fs.mkdir(f"/gen{g}")
            for i, content in enumerate(dataset):
                ino = fs.create(f"/gen{g}/f{i}")
                fs.write(ino, 0, content)
        fs.daemon.drain()
        used_all = fs.statfs()["used_pages"]
        # Expire the two oldest generations.
        for g in range(2):
            for i in range(15):
                fs.unlink(f"/gen{g}/f{i}")
            fs.rmdir(f"/gen{g}")
        used_after = fs.statfs()["used_pages"]
        # Shared pages survive (gen2 still references them): expiry of
        # duplicates frees metadata/log pages but few data pages.
        assert used_after <= used_all
        for i, content in enumerate(dataset):
            assert fs.read(fs.lookup(f"/gen2/f{i}"), 0,
                           2 * PAGE_SIZE) == content
        # Now expire the last generation: everything comes back.
        baseline = None
        for i in range(15):
            fs.unlink(f"/gen2/f{i}")
        fs.rmdir("/gen2")
        assert fs.fact.live_entries() == {}
        check_fs_invariants(fs)


class TestVMImageStore:
    """Cloned VM images: one base, many patched copies."""

    def test_clone_patch_lifecycle(self):
        fs = build()
        base_gen = DataGenerator(alpha=0.0, seed=9)
        base_image = base_gen.file_data(16 * PAGE_SIZE)
        golden = fs.create("/golden.img")
        fs.write(golden, 0, base_image)
        fs.daemon.drain()

        # Clone 8 VMs (full copies at the file level).
        clones = []
        for v in range(8):
            ino = fs.create(f"/vm{v}.img")
            fs.write(ino, 0, base_image)
            clones.append(ino)
        fs.daemon.drain()
        st = fs.space_stats()
        # 9 x 16 pages logical, ~16 physical.
        assert st["logical_pages"] == 9 * 16
        assert st["physical_pages"] == 16

        # Each VM patches two distinct pages.
        patcher = DataGenerator(alpha=0.0, seed=10, stream=3)
        for v, ino in enumerate(clones):
            fs.write(ino, (v % 16) * PAGE_SIZE, patcher.file_data(PAGE_SIZE))
            fs.write(ino, ((v + 5) % 16) * PAGE_SIZE,
                     patcher.file_data(PAGE_SIZE))
        fs.daemon.drain()
        st = fs.space_stats()
        assert st["physical_pages"] == 16 + 2 * 8  # base + unique patches
        # Golden image untouched by any patch.
        assert fs.read(golden, 0, 16 * PAGE_SIZE) == base_image

        # Delete half the VMs; survivors and golden stay intact.
        for v in range(0, 8, 2):
            fs.unlink(f"/vm{v}.img")
        fs.scrub()
        assert fs.read(golden, 0, 16 * PAGE_SIZE) == base_image
        check_fs_invariants(fs)

    def test_crash_between_every_phase(self):
        """The same lifecycle with a crash + remount between phases."""
        fs = build()
        base = DataGenerator(alpha=0.0, seed=4).file_data(8 * PAGE_SIZE)

        def crash_remount(fs):
            fs.dev.crash()
            fs.dev.recover_view()
            return DeNovaFS.mount(fs.dev)

        golden = fs.create("/golden")
        fs.write(golden, 0, base)
        fs = crash_remount(fs)
        for v in range(4):
            ino = fs.create(f"/vm{v}")
            fs.write(ino, 0, base)
        fs = crash_remount(fs)
        fs.daemon.drain()
        fs = crash_remount(fs)
        st = fs.space_stats()
        assert st["physical_pages"] == 8
        for v in range(4):
            assert fs.read(fs.lookup(f"/vm{v}"), 0, 8 * PAGE_SIZE) == base
        check_fs_invariants(fs)


class TestMaintenanceCycle:
    def test_churn_gc_scrub_converges(self):
        """Months of churn compressed: create/overwrite/delete cycles
        with periodic GC and scrubbing never leak pages."""
        fs = build()
        gen = DataGenerator(alpha=0.5, seed=6, dup_pool_size=4)
        for cycle in range(6):
            for i in range(12):
                path = f"/c{cycle}_f{i}"
                ino = fs.create(path)
                fs.write(ino, 0, gen.file_data(2 * PAGE_SIZE))
            fs.daemon.drain()
            # Delete the previous cycle's files.
            if cycle:
                for i in range(12):
                    fs.unlink(f"/c{cycle - 1}_f{i}")
            fs.gc(1)  # compact the root directory log
            fs.scrub()
            check_fs_invariants(fs)
        # Only the last cycle's files remain.
        live = [n for n in fs.listdir("/")]
        assert len(live) == 12
        st = fs.space_stats()
        assert st["logical_pages"] == 24
        # The dup pool bounds physical pages: at most 12 unique x 2 + pool.
        assert st["physical_pages"] <= 24
