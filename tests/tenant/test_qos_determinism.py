"""Schedule-permutation determinism for the weighted-fair scheduler.

Two layers of guarantee, each tested where it actually holds:

* :class:`DRRGate` dispatches queued waiters in sorted-tenant-id DRR
  order, so the grant sequence from a saturated gate is a **pure
  function of the queued multiset** — any arrival permutation of the
  same ops produces the identical admission order.
* At the ConcurrentVFS level, arrival times themselves move with the
  schedule (an uncontended gate grants in arrival order by design), so
  the invariant is: identical final logical state, identical per-tenant
  admission counts, and identical per-tenant usage accounting across
  seeded interleavings *and* worker counts.
"""

import itertools
from collections import Counter

import pytest

from repro.conc import fs_state_digest
from repro.conc.vfs import ConcurrentVFS
from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.sim import Engine
from repro.tenant.qos import DRRGate, TokenBucket
from repro.workloads.datagen import DataGenerator
from repro.workloads.runner import DDMode

pytestmark = pytest.mark.tenant

WEIGHTS = {1: 4, 2: 2, 3: 1}


def drive_gate(arrivals, capacity=2, releases=None):
    """Saturate a gate, enqueue ``arrivals`` (tids), then drain it."""
    eng = Engine()
    gate = DRRGate(eng, capacity, lambda t: WEIGHTS.get(t, 1))
    for _ in range(capacity):          # fill capacity; nothing queued yet
        eng.process(gate.acquire(0), name="filler")

    def _spawn():
        for tid in arrivals:
            eng.process(gate.acquire(tid), name=f"acq-{tid}")
        yield eng.timeout(0)

    def _drain():
        yield eng.timeout(1)
        for _ in range(capacity + len(arrivals)):
            gate.release()
            yield eng.timeout(1)

    eng.process(_spawn(), name="spawn")
    eng.process(_drain(), name="drain")
    eng.run()
    assert gate.in_flight == 0
    # Skip the uncontended capacity-filling grants.
    return gate.admission_log[capacity:]


class TestGatePermutation:
    def test_grant_order_pure_function_of_queued_multiset(self):
        """Every arrival permutation of the same ops is granted in the
        same order — the satellite's determinism observable."""
        multiset = [1, 1, 1, 1, 2, 2, 3, 3]
        orders = {tuple(drive_gate(list(p)))
                  for p in itertools.permutations([1, 2, 3], 3)
                  for p in [sum(([t] * multiset.count(t) for t in p), [])]}
        assert len(orders) == 1
        order = next(iter(orders))
        assert Counter(order) == Counter(multiset)
        # Weighted fairness is visible in the prefix: tenant 1 (weight 4)
        # drains before tenant 3 (weight 1) finishes.
        assert order.index(3) > order.index(1)
        assert order[:4].count(1) >= order[:4].count(3)

    def test_interleaved_permutations_also_converge(self):
        multiset = [3, 2, 1, 3, 2, 1, 1, 1, 2, 3]
        perms = set(itertools.permutations(multiset))
        sample = list(sorted(perms))[:12]
        orders = {tuple(drive_gate(list(p))) for p in sample}
        assert len(orders) == 1

    def test_admission_log_records_every_grant(self):
        log = drive_gate([1, 2, 3])
        assert Counter(log) == Counter([1, 2, 3])


class TestTokenBucketDeterminism:
    def test_burst_serializes_identically(self):
        """The n-th over-burst reservation always waits n debt slots —
        no wall clock, no randomness."""
        delays = []
        for _ in range(3):
            b = TokenBucket(rate_per_s=1000.0, burst=2.0)
            delays.append([b.reserve(0.0) for _ in range(6)])
        assert delays[0] == delays[1] == delays[2]
        d = delays[0]
        assert d[0] == d[1] == 0.0
        assert d[2] > 0 and all(d[i + 1] > d[i] for i in range(2, 5))


def qos_run(seed: int, workers: int):
    """One fleet-shaped run: 3 weighted tenants, bounded DWQ, QoS on."""
    fs, _ = make_fs(Variant.IMMEDIATE,
                    Config(device_pages=4096, max_inodes=256, cpus=4))
    names = {"tn0": 4, "tn1": 2, "tn2": 1}
    tids = {n: fs.tenant_create(n, weight=w).tid
            for n, w in names.items()}
    cvfs = ConcurrentVFS(fs, bw_slots=2, workers=workers, qos=True,
                         jitter_seed=seed, jitter_ns=4000.0,
                         max_shard_depth=4)

    def client(n, i):
        holder = f"c-{n}"
        gen = DataGenerator(0.5, seed=3, stream=i)
        tid = tids[n]

        def body():
            for k in range(6):
                data = gen.file_data(PAGE_SIZE)
                ino, _ = yield from cvfs.op(
                    lambda p=f"/t/{n}/f{k}": fs.create(p), holder,
                    ns_mode="w", tenant=tid)
                yield from cvfs.admit(ino, holder, tenant=tid)
                yield from cvfs.op(
                    lambda ino=ino, d=data: fs.write(ino, 0, d, cpu=i),
                    holder, ino=ino, tenant=tid)
                cvfs.kick_workers()

        return body()

    procs = [cvfs.client(client(n, i), name=f"c-{n}")
             for i, n in enumerate(names)]
    wp = cvfs.start_workers(DDMode.immediate())

    def coord():
        yield cvfs.eng.all_of(procs)
        cvfs.stop_workers()
        yield cvfs.eng.all_of(wp)

    c = cvfs.eng.process(coord(), name="coord")
    cvfs.eng.run()
    assert c.triggered, "qos run deadlocked"
    return (fs_state_digest(fs), Counter(cvfs.qos.gate.admission_log),
            fs.tenant_stats(), cvfs.eng.now)


class TestFleetDeterminism:
    def test_state_and_admissions_identical_across_schedules(self):
        runs = {(seed, workers): qos_run(seed, workers)
                for seed in (1, 2, 3) for workers in (1, 2)}
        digests = {r[0] for r in runs.values()}
        admissions = {tuple(sorted(r[1].items())) for r in runs.values()}
        stats = {str(r[2]) for r in runs.values()}
        assert len(digests) == 1, "logical state diverged with schedule"
        assert len(admissions) == 1, "per-tenant admissions diverged"
        assert len(stats) == 1, "tenant accounting diverged"
        # The schedules genuinely differed — determinism is not vacuous.
        assert len({r[3] for r in runs.values()}) > 1
