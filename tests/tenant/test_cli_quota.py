"""Quota-exceeded CLI UX: structured error, non-zero exit, no traceback."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.tenant


@pytest.fixture
def image(tmp_path):
    img = str(tmp_path / "disk.img")
    assert main(["mkfs", img, "--pages", "2048", "--inodes", "128"]) == 0
    return img


@pytest.fixture
def payload(tmp_path):
    f = tmp_path / "payload"
    f.write_bytes(b"\xaa" * (4 * 4096))
    return str(f)


class TestTenantLifecycle:
    def test_create_list_roundtrip(self, image, capsys):
        assert main(["tenant", "create", image, "alice",
                     "--quota-pages", "8", "--weight", "3"]) == 0
        capsys.readouterr()
        assert main(["tenant", "list", image, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.tenants/1"
        t = doc["tenants"]["alice"]
        assert t["quota_pages"] == 8 and t["weight"] == 3

    def test_duplicate_create_fails_cleanly(self, image, capsys):
        assert main(["tenant", "create", image, "alice"]) == 0
        capsys.readouterr()
        assert main(["tenant", "create", image, "alice"]) != 0
        err = capsys.readouterr().err
        assert "alice" in err and "Traceback" not in err


class TestQuotaExceededUX:
    def test_over_quota_put_is_enospc_style(self, image, payload, capsys):
        """The ISSUE acceptance: non-zero exit, a single structured line
        on stderr, and never a Python traceback."""
        assert main(["tenant", "create", image, "alice",
                     "--quota-pages", "2"]) == 0
        capsys.readouterr()
        rc = main(["put", image, "/t/alice/big", payload])
        out = capsys.readouterr()
        assert rc == 1
        lines = [ln for ln in out.err.splitlines() if ln]
        assert len(lines) == 1
        assert lines[0].startswith("quota exceeded:")
        assert "alice" in lines[0] and "data-page" in lines[0]
        assert "Traceback" not in out.err

    def test_inode_quota_exceeded_same_ux(self, image, payload, capsys):
        assert main(["tenant", "create", image, "bob",
                     "--quota-inodes", "2"]) == 0
        assert main(["put", image, "/t/bob/a", payload]) == 0
        capsys.readouterr()
        rc = main(["put", image, "/t/bob/b", payload])
        err = capsys.readouterr().err
        assert rc == 1
        assert err.startswith("quota exceeded:")
        assert "inode" in err and "Traceback" not in err

    def test_quota_raise_unblocks(self, image, payload, capsys):
        assert main(["tenant", "create", image, "carol",
                     "--quota-pages", "2"]) == 0
        assert main(["put", image, "/t/carol/big", payload]) == 1
        assert main(["tenant", "quota", image, "carol",
                     "--quota-pages", "100"]) == 0
        assert main(["put", image, "/t/carol/big", payload]) == 0
        capsys.readouterr()
        assert main(["stats", image, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tenants"]["carol"]["used_pages"] == 4
