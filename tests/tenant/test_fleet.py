"""Fleet-traffic scenario generator: shapes, accounting, reproducibility."""

import pytest

from repro.core import Config, Variant, make_fs
from repro.workloads.fleet import FleetSpec, run_fleet
from repro.workloads.runner import DDMode

pytestmark = pytest.mark.tenant


def build_fs():
    fs, _ = make_fs(Variant.DELAYED,
                    Config(device_pages=4096, max_inodes=256, cpus=4))
    return fs


class TestSpecShapes:
    def test_zipfian_file_counts(self):
        spec = FleetSpec(tenants=4, base_files=32, zipf_s=1.0)
        assert [spec.files_for(i) for i in range(4)] == [32, 16, 11, 8]
        flat = FleetSpec(tenants=3, base_files=8, zipf_s=0.0)
        assert [flat.files_for(i) for i in range(3)] == [8, 8, 8]
        # The tail never drops below one file per tenant.
        steep = FleetSpec(tenants=3, base_files=4, zipf_s=10.0)
        assert steep.files_for(2) == 1


class TestRunFleet:
    def test_basic_run_accounts_per_tenant(self):
        spec = FleetSpec(tenants=3, base_files=6, file_size=8192,
                         zipf_s=1.0, seed=11)
        res = run_fleet(build_fs(), spec, dd=DDMode.immediate(),
                        workers=1, max_shard_depth=8)
        assert res.per_tenant["tn0"]["files"] == 6
        assert res.per_tenant["tn1"]["files"] == 3
        assert res.per_tenant["tn2"]["files"] == 2
        for t in res.per_tenant.values():
            assert t["bytes"] == t["files"] * 8192
            assert t["p99_ns"] >= t["p50_ns"] >= 0
        assert res.total_ns >= res.foreground_ns > 0

    def test_quota_failures_counted_not_fatal(self):
        fs = build_fs()
        fs.tenant_create("tn0", quota_pages=4)   # 2 files of 2 pages
        spec = FleetSpec(tenants=1, base_files=6, file_size=8192,
                         seed=11)
        res = run_fleet(fs, spec, dd=DDMode.immediate(),
                        workers=1, max_shard_depth=8)
        assert res.quota_failures.get("tn0", 0) >= 1
        assert res.per_tenant["tn0"]["files"] == 2
        assert fs.tenant_stats()["tn0"]["used_pages"] <= 4

    def test_churn_deletes_and_rewrites(self):
        spec = FleetSpec(tenants=2, base_files=6, file_size=8192,
                         churn=0.5, seed=11)
        res = run_fleet(build_fs(), spec, dd=DDMode.immediate(),
                        workers=1, max_shard_depth=8)
        assert res.per_tenant["tn0"]["churned"] == 3
        assert res.per_tenant["tn1"]["churned"] >= 1

    def test_noisy_neighbor_burst_runs_all_files(self):
        spec = FleetSpec(tenants=2, base_files=4, file_size=8192,
                         zipf_s=10.0, noisy_tenant=1,
                         noisy_burst_files=12, noisy_clients=3, seed=11)
        res = run_fleet(build_fs(), spec, dd=DDMode.immediate(),
                        bw_slots=2, workers=1, shards=2,
                        max_shard_depth=2, qos=True)
        assert res.per_tenant["tn1"]["files"] == 13   # 1 base + 12 burst
        assert res.qos and res.stalls > 0

    def test_reproducible_across_runs(self):
        spec = FleetSpec(tenants=3, base_files=6, file_size=8192,
                         dup_ratio=0.5, think_ratio=0.3,
                         diurnal_period_ms=1.0, diurnal_amplitude=0.5,
                         churn=0.3, seed=23)

        def one():
            res = run_fleet(build_fs(), spec, dd=DDMode.immediate(),
                            workers=2, max_shard_depth=4, qos=True)
            return (res.total_ns, res.stalls,
                    {n: (t["files"], t["bytes"], t["ops"], t["p99_ns"])
                     for n, t in res.per_tenant.items()})

        assert one() == one()
