"""Quota accounting under deduplication.

The core invariant: accounting is *logical* per tenant and *physical*
once globally.  N tenants writing the same page are each charged one
logical page while the allocator holds one physical block — dedup
savings accrue to the operator, not to whichever tenant happened to
write the block second.  Checked across the delayed, inline, and
hybrid dedup variants, and again after crash-recovery replay (usage is
rebuilt from the namespace, so recovery must reproduce the same
numbers).
"""

import pytest

from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.tenant import QuotaExceeded

pytestmark = pytest.mark.tenant

DEDUP_VARIANTS = [Variant.DELAYED, Variant.INLINE, Variant.HYBRID]

DUP = b"\xd7" * PAGE_SIZE


def build_fs(variant):
    fs, _dd = make_fs(variant, Config(device_pages=1024, max_inodes=64))
    return fs


def settle(fs):
    """Run whatever offline dedup machinery the variant has."""
    if hasattr(fs, "daemon"):
        fs.daemon.drain()


def write_dup_page(fs, tenant, n=1):
    for k in range(n):
        ino = fs.create(f"/t/{tenant}/dup{k}")
        fs.write(ino, 0, DUP)


class TestLogicalVsPhysical:
    @pytest.mark.parametrize("variant", DEDUP_VARIANTS,
                             ids=lambda v: v.value)
    def test_n_tenants_one_physical_page(self, variant):
        """Three tenants write the same page: logical 1 each, physical 1."""
        fs = build_fs(variant)
        names = ["tn0", "tn1", "tn2"]
        for name in names:
            fs.tenant_create(name)
        for name in names:
            write_dup_page(fs, name)
        settle(fs)
        stats = fs.tenant_stats()
        for name in names:
            assert stats[name]["used_pages"] == 1, \
                f"{name} charged {stats[name]['used_pages']} logical pages"
        dd = fs.space_stats()
        assert dd["physical_pages"] == 1
        assert dd["logical_pages"] == len(names)

    @pytest.mark.parametrize("variant", DEDUP_VARIANTS,
                             ids=lambda v: v.value)
    def test_accounting_survives_crash_recovery(self, variant):
        """Crash + remount replays to the same logical/physical split."""
        fs = build_fs(variant)
        names = ["tn0", "tn1", "tn2"]
        for name in names:
            fs.tenant_create(name)
        for name in names:
            write_dup_page(fs, name, n=2)
        settle(fs)
        before = fs.tenant_stats()
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = type(fs).mount(fs.dev)
        after = fs2.tenant_stats()
        for name in names:
            assert after[name]["used_pages"] == \
                before[name]["used_pages"] == 2
            assert after[name]["used_inodes"] == \
                before[name]["used_inodes"]
        settle(fs2)
        assert fs2.space_stats()["physical_pages"] == 1

    def test_unlink_refunds_logical_only(self):
        """A tenant dropping its reference gets its logical charge back;
        the block stays physical while other tenants still map it."""
        fs = build_fs(Variant.DELAYED)
        for name in ("tn0", "tn1"):
            fs.tenant_create(name)
            write_dup_page(fs, name)
        settle(fs)
        fs.unlink("/t/tn0/dup0")
        stats = fs.tenant_stats()
        assert stats["tn0"]["used_pages"] == 0
        assert stats["tn1"]["used_pages"] == 1
        assert fs.du("/t/tn1")["unique_pages"] == 1


class TestQuotaEnforcementUnderDedup:
    def test_dedupable_write_still_charged_against_quota(self):
        """Quota is checked on the logical charge: a tenant at its page
        quota cannot write even a page that would deduplicate to zero
        new physical blocks."""
        fs = build_fs(Variant.DELAYED)
        fs.tenant_create("landlord")          # unlimited; owns the block
        write_dup_page(fs, "landlord")
        settle(fs)
        fs.tenant_create("tight", quota_pages=1)
        write_dup_page(fs, "tight")           # 1 page: exactly at quota
        with pytest.raises(QuotaExceeded):
            ino = fs.create("/t/tight/over")
            fs.write(ino, 0, DUP)
        assert fs.tenant_stats()["tight"]["used_pages"] == 1

    def test_failed_write_leaks_no_charge(self):
        """A quota-rejected write must not move the usage counter."""
        fs = build_fs(Variant.DELAYED)
        fs.tenant_create("tight", quota_pages=2)
        ino = fs.create("/t/tight/f")
        fs.write(ino, 0, DUP * 2)             # at quota
        used = fs.tenant_stats()["tight"]["used_pages"]
        with pytest.raises(QuotaExceeded):
            fs.write(ino, 2 * PAGE_SIZE, DUP)
        assert fs.tenant_stats()["tight"]["used_pages"] == used == 2

    def test_overwrite_charges_net_delta(self):
        """CoW overwrite charges the net mapping delta (zero here), even
        though the quota *check* is gross: the CoW headroom must exist,
        but the displaced page is refunded once the write commits."""
        fs = build_fs(Variant.DELAYED)
        fs.tenant_create("tn", quota_pages=3)
        ino = fs.create("/t/tn/f")
        fs.write(ino, 0, DUP * 2)
        fs.write(ino, 0, b"\x11" * PAGE_SIZE)  # CoW page 0
        assert fs.tenant_stats()["tn"]["used_pages"] == 2
        # At-quota overwrite: the gross check needs 1 page of headroom.
        fs.write(ino, 2 * PAGE_SIZE, DUP)      # now used == quota == 3
        with pytest.raises(QuotaExceeded):
            fs.write(ino, 0, b"\x22" * PAGE_SIZE)
        assert fs.tenant_stats()["tn"]["used_pages"] == 3

    def test_inode_quota_enforced_at_create(self):
        fs = build_fs(Variant.DELAYED)
        # Quota 2 = the root dir + one file.
        fs.tenant_create("tiny", quota_inodes=2)
        fs.create("/t/tiny/a")
        with pytest.raises(QuotaExceeded):
            fs.create("/t/tiny/b")
        fs.unlink("/t/tiny/a")
        fs.create("/t/tiny/b")               # freed inode reusable
