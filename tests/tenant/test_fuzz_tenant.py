"""Differential fuzz in tenant mode: per-tenant namespaces + crashes.

``FuzzConfig(tenants=N)`` heads each client stream with a
``tenant_create`` and prefixes its ops under ``/t/tn<c>``; the model
mirrors the tenant root dirs, so the crash sweep's pointwise prefix
check covers tenant-table persistence interleaved with normal traffic.
"""

import pytest

from repro.fuzz.diff import FuzzConfig, run_case
from repro.fuzz.gen import generate_tenant_sequence

pytestmark = pytest.mark.tenant


class TestTenantSequenceGen:
    def test_streams_prefixed_and_headed_by_create(self):
        ops = generate_tenant_sequence(seed=3, stream=0, nops=40,
                                       tenants=3)
        creates = [op for op in ops if op.op == "tenant_create"]
        assert sorted(op.path for op in creates) == ["tn0", "tn1", "tn2"]
        for op in ops:
            if op.op in ("tenant_create", "remount", "crash", "dedup"):
                continue
            if op.path is not None:
                assert op.path.startswith("/t/tn"), op
        # Each tenant's create precedes every op under its root.
        seen = set()
        for op in ops:
            if op.op == "tenant_create":
                seen.add(op.path)
            elif op.path is not None and op.path.startswith("/t/"):
                assert op.path.split("/")[2] in seen, op

    def test_deterministic(self):
        a = generate_tenant_sequence(seed=9, stream=2, nops=30, tenants=2)
        b = generate_tenant_sequence(seed=9, stream=2, nops=30, tenants=2)
        assert [(o.op, o.path, o.offset, o.length) for o in a] == \
               [(o.op, o.path, o.offset, o.length) for o in b]


class TestTenantFuzzCase:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_tenant_case_clean(self, seed):
        cfg = FuzzConfig(seed=seed, total_ops=60, seq_ops=30, budget=16,
                         tenants=3)
        ops = generate_tenant_sequence(seed=seed, stream=0, nops=30,
                                       tenants=3)
        res = run_case(ops, cfg)
        assert res.ok, res.violations
        assert res.crash_points > 0
