"""Crash sweep over every tenant-table persistence event.

The tenant registry persists with the A/B-slot header-last discipline
(payload persist, then header persist).  ``sweep_crash_points`` crashes
at *every* ``dev.persist`` the scenario issues — both registry slots'
payload and header persists plus the surrounding namespace log
appends — and remounts, so these tests cover every tenant-table
persistence event the ISSUE acceptance requires.
"""

import pytest

from repro.failure import check_fs_invariants, sweep_crash_points
from repro.nova import NovaFS, PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock
from repro.tenant.registry import TenantRegistry

pytestmark = pytest.mark.tenant


def fresh_fs(pages=512):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return NovaFS.mkfs(dev, max_inodes=64)


class TestRegistryUnit:
    def test_save_load_roundtrip(self):
        fs = fresh_fs()
        reg = fs.tenants.registry
        reg.create("alice", quota_pages=10, quota_inodes=4, weight=3)
        reg.create("bob")
        reg2 = TenantRegistry(fs.dev, fs.geo.tenant_page,
                              fs.geo.tenant_pages)
        reg2.load()
        assert [t.name for t in reg2] == ["alice", "bob"]
        a = reg2.get("alice")
        assert (a.quota_pages, a.quota_inodes, a.weight) == (10, 4, 3)
        assert reg2.seq == reg.seq

    def test_torn_slot_falls_back_to_previous(self):
        """Corrupting the newest slot's payload must not lose the table
        state committed by the previous save."""
        fs = fresh_fs()
        reg = fs.tenants.registry
        reg.create("alice")              # seq 1 -> slot 1
        reg.create("bob")                # seq 2 -> slot 0
        newest = reg.base + (reg.seq % 2) * reg.slot_bytes
        fs.dev.write(newest + 32, b"\xff" * 8)  # tear the payload
        reg2 = TenantRegistry(fs.dev, fs.geo.tenant_page,
                              fs.geo.tenant_pages)
        reg2.load()
        assert [t.name for t in reg2] == ["alice"]
        assert reg2.seq == 1

    def test_name_validation(self):
        fs = fresh_fs()
        reg = fs.tenants.registry
        for bad in ("", "a/b", ".", "..", "x" * 48):
            with pytest.raises(ValueError):
                reg.create(bad)
        with pytest.raises(ValueError):
            reg.create("ok", weight=0)
        reg.create("ok")
        with pytest.raises(ValueError):
            reg.create("ok")


class TestCreateCrash:
    def test_tenant_create_atomic(self):
        """Crash anywhere inside tenant_create: after remount the tenant
        is either fully present or absent, and a retry always lands it."""

        def build():
            fs = fresh_fs()

            def scenario():
                fs.tenant_create("alice", quota_pages=8, quota_inodes=4,
                                 weight=2)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            check_fs_invariants(fs2)
            info = fs2.tenants.registry.get("alice")
            if info is not None:
                # Registry committed: the record is complete and the
                # root dir exists and is owned.
                assert (info.quota_pages, info.quota_inodes,
                        info.weight) == (8, 4, 2)
                assert fs2.exists("/t/alice")
                root = fs2.lookup("/t/alice")
                assert fs2.tenants.tenant_of(root) == info.tid
            else:
                # Crash before the registry commit: at most an unowned
                # /t/alice dir survives, which the retry adopts.
                info = fs2.tenant_create("alice", quota_pages=8,
                                         quota_inodes=4, weight=2)
                assert fs2.tenants.tenant_of(
                    fs2.lookup("/t/alice")) == info.tid

        assert sweep_crash_points(build, check) > 0

    def test_second_tenant_never_clobbers_first(self):
        """A/B alternation: a crash while committing tenant #2 leaves
        tenant #1's record readable from the other slot."""

        def build():
            fs = fresh_fs()
            fs.tenant_create("alice", quota_pages=8)

            def scenario():
                fs.tenant_create("bob", quota_pages=16)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            check_fs_invariants(fs2)
            a = fs2.tenants.registry.get("alice")
            assert a is not None and a.quota_pages == 8
            b = fs2.tenants.registry.get("bob")
            if b is not None:
                assert b.quota_pages == 16
                assert b.tid != a.tid

        assert sweep_crash_points(build, check) > 0


class TestQuotaCrash:
    def test_set_quota_old_or_new(self):
        """Crash inside set_quota: the recovered quota is all-old or
        all-new, never a torn mixture."""

        def build():
            fs = fresh_fs()
            fs.tenant_create("alice", quota_pages=8, quota_inodes=4)

            def scenario():
                fs.tenant_set_quota("alice", quota_pages=100,
                                    quota_inodes=50)

            return fs.dev, scenario

        def check(dev, point, phase):
            fs2 = NovaFS.mount(dev)
            check_fs_invariants(fs2)
            info = fs2.tenants.registry.get("alice")
            assert info is not None
            assert (info.quota_pages, info.quota_inodes) in (
                (8, 4), (100, 50)), "torn quota update visible"

        assert sweep_crash_points(build, check) > 0


class TestUsageRebuild:
    def test_usage_rebuilt_from_namespace_after_crash(self):
        """Usage accounting is DRAM-only: whatever the logs replay to is
        the usage, so a crash can never leak or lose a charge."""
        fs = fresh_fs()
        fs.tenant_create("alice", quota_pages=100)
        ino = fs.create("/t/alice/f")
        fs.write(ino, 0, b"x" * (2 * PAGE_SIZE))
        fs.dev.crash()
        fs.dev.recover_view()
        fs2 = NovaFS.mount(fs.dev)
        st = fs2.tenant_stats()["alice"]
        assert st["used_pages"] == 2
        assert st["used_inodes"] == 2   # root dir + the file
