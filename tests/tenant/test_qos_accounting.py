"""QoS outstanding-node accounting: the charge taken in admit() must be
released exactly once no matter what happens to the write afterwards.

Three regression scenarios, all of which used to wedge a tenant by
leaking ``TenantQoS.outstanding`` until ``over_share()`` was permanently
true and every later ``admit()`` waited on an event nobody fires:

* the file is **unlinked while its node is still queued** (fleet churn)
  — completion must use the tenant id stamped on the node at enqueue
  time, because ``tenant_of(ino)`` is already None;
* the write **enqueues no node at all** (hybrid inline completion) —
  the writer must hand the reservation back;
* several writers of one tenant pass the share check **concurrently**
  — admit must re-check after every wait so the share is never
  overshot (each overshoot is a slot the workers never give back to
  the right waiter ordering).
"""

import pytest

from repro.conc.vfs import ConcurrentVFS
from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.tenant.qos import UNTENANTED
from repro.workloads.datagen import DataGenerator
from repro.workloads.fleet import FleetSpec, run_fleet
from repro.workloads.runner import DDMode

pytestmark = pytest.mark.tenant


def build_fs(variant=Variant.DELAYED, cpus=2):
    fs, _ = make_fs(variant,
                    Config(device_pages=4096, max_inodes=256, cpus=cpus))
    return fs


class TestUnlinkedNodeAccounting:
    def test_unlink_before_drain_releases_outstanding(self):
        """A node whose inode dies while queued still credits its tenant."""
        fs = build_fs()
        tid = fs.tenant_create("tn0").tid
        cvfs = ConcurrentVFS(fs, bw_slots=2, workers=1, qos=True,
                             max_shard_depth=8)
        data = b"\xae" * PAGE_SIZE
        state = {}

        def client():
            holder = "c0"
            ino, _ = yield from cvfs.op(
                lambda: fs.create("/t/tn0/f"), holder, ns_mode="w",
                tenant=tid)
            yield from cvfs.admit(ino, holder, tenant=tid)
            yield from cvfs.op(lambda: fs.write(ino, 0, data, cpu=0),
                               holder, ino=ino, tenant=tid)
            yield from cvfs.op(lambda: fs.unlink("/t/tn0/f"), holder,
                               ns_mode="w", ino=ino, tenant=tid)
            state["ino"] = ino

        p = cvfs.client(client(), name="c0")

        def coord():
            yield cvfs.eng.all_of([p])
            # Client done: the write's node is queued, the inode is gone.
            assert cvfs.qos.outstanding.get(tid) == 1
            nodes = fs.dwq.snapshot()
            assert len(nodes) == 1
            # The regression scenario: live ownership is already popped,
            # only the enqueue-time stamp still knows the tenant.
            assert fs.tenants.tenant_of(state["ino"]) is None
            assert nodes[0].tid == tid
            wp = cvfs.start_workers(DDMode.immediate())
            cvfs.stop_workers()
            yield cvfs.eng.all_of(wp)

        c = cvfs.eng.process(coord(), name="coord")
        cvfs.eng.run()
        assert c.triggered
        assert cvfs.qos.outstanding.get(tid, 0) == 0
        assert not cvfs.qos.over_share(tid)
        assert not cvfs.qos.dwq_waiters


class TestInlineCompletionAccounting:
    def test_hybrid_inline_fleet_does_not_leak_reservations(self):
        """Inline-completed writes (no node) hand their reservation back."""
        fs = build_fs(Variant.HYBRID, cpus=4)
        if hasattr(fs, "force_mode"):
            from repro.dedup.hybrid import MODE_INLINE
            fs.force_mode(MODE_INLINE)
        spec = FleetSpec(tenants=2, base_files=6, file_size=8192,
                         dup_ratio=0.0, seed=11)
        res = run_fleet(fs, spec, dd=DDMode.immediate(), workers=1,
                        shards=2, max_shard_depth=2, qos=True)
        assert res.per_tenant["tn0"]["files"] == 6
        assert res.per_tenant["tn1"]["files"] == 3


class TestShareNeverOvershot:
    def test_concurrent_writers_respect_share(self):
        """N writers of one tenant never exceed its DWQ share."""
        fs = build_fs(cpus=4)
        busy = fs.tenant_create("busy").tid
        fs.tenant_create("calm")           # splits the capacity in half
        cvfs = ConcurrentVFS(fs, bw_slots=2, workers=1, qos=True,
                             shards=1, max_shard_depth=4)
        share = cvfs.qos.share_of(busy)
        assert share == 2
        peak = {"v": 0}
        orig = cvfs.qos.note_enqueued

        def watched(tid):
            orig(tid)
            peak["v"] = max(peak["v"], cvfs.qos.outstanding.get(busy, 0))

        cvfs.qos.note_enqueued = watched

        def client(i):
            holder = f"b{i}"
            gen = DataGenerator(0.0, seed=5, stream=i)

            def body():
                for k in range(4):
                    data = gen.file_data(PAGE_SIZE)
                    ino, _ = yield from cvfs.op(
                        lambda p=f"/t/busy/f{i}_{k}": fs.create(p),
                        holder, ns_mode="w", tenant=busy)
                    yield from cvfs.admit(ino, holder, tenant=busy)
                    yield from cvfs.op(
                        lambda ino=ino, d=data: fs.write(ino, 0, d, cpu=i),
                        holder, ino=ino, tenant=busy)
                    cvfs.kick_workers()

            return body()

        procs = [cvfs.client(client(i), name=f"b{i}") for i in range(4)]
        wp = cvfs.start_workers(DDMode.immediate())

        def coord():
            yield cvfs.eng.all_of(procs)
            cvfs.stop_workers()
            yield cvfs.eng.all_of(wp)

        c = cvfs.eng.process(coord(), name="coord")
        cvfs.eng.run()
        assert c.triggered, "run deadlocked"
        assert peak["v"] <= share, \
            f"tenant exceeded its DWQ share: {peak['v']} > {share}"
        assert cvfs.qos.outstanding.get(busy, 0) == 0


class TestGateCoversUntenanted:
    def test_tenantless_ops_pass_the_gate(self):
        """With QoS on, ops without a tenant still occupy gate capacity
        (sentinel id, weight 1) so gated tenants never queue behind
        ungated slot holders."""
        fs = build_fs()
        tid = fs.tenant_create("tn0").tid
        cvfs = ConcurrentVFS(fs, bw_slots=1, workers=1, qos=True,
                             max_shard_depth=8)

        def tenant_client():
            for k in range(3):
                yield from cvfs.op(
                    lambda p=f"/t/tn0/f{k}": fs.create(p), "t0",
                    ns_mode="w", tenant=tid)

        def plain_client():
            for k in range(3):
                yield from cvfs.op(
                    lambda p=f"/x{k}": fs.create(p), "plain",
                    ns_mode="w")   # no tenant attached

        procs = [cvfs.client(tenant_client(), name="t0"),
                 cvfs.client(plain_client(), name="plain")]

        def coord():
            yield cvfs.eng.all_of(procs)

        c = cvfs.eng.process(coord(), name="coord")
        cvfs.eng.run()
        assert c.triggered
        log = cvfs.qos.gate.admission_log
        assert log.count(UNTENANTED) == 3
        assert log.count(tid) == 3
        assert cvfs.qos.gate.in_flight == 0
