"""Tenant-boundary rename and reflink/snapshot quota accounting.

Regression tests for two accounting bugs:

* cross-directory ``rename()`` used to cross tenant roots silently —
  the inode (or a whole subtree) moved while its quota charge stayed
  with the old owner, so the mount-time ``/t`` ownership rebuild
  disagreed with live accounting.  Renames must be rejected EXDEV-style
  with the same ``FSError`` contract as ``link()``.
* ``reflink()``/``snapshot()`` installed destination mappings without
  ever charging the destination tenant's logical quota — unbounded
  logical space via clones.  Reflink now gross-checks before staging,
  inherits the destination parent's ownership, and net-charges after
  the radix install; an over-quota reflink is atomic (no partial clone).
"""

import pytest

from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.nova.fs import FSError, FileNotFound
from repro.tenant import QuotaExceeded

pytestmark = pytest.mark.tenant

PAGE = b"\xa5" * PAGE_SIZE


def build_fs(variant=Variant.DELAYED):
    fs, _dd = make_fs(variant, Config(device_pages=1024, max_inodes=64))
    return fs


def settle(fs):
    if hasattr(fs, "daemon"):
        fs.daemon.drain()


def make_file(fs, path, npages=1, fill=PAGE):
    ino = fs.create(path)
    fs.write(ino, 0, fill * npages)
    return ino


def remount(fs):
    fs.unmount()
    return type(fs).mount(fs.dev)


class TestCrossTenantRename:
    def test_rename_within_tenant_keeps_charge(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        make_file(fs, "/t/tn0/a", npages=2)
        fs.mkdir("/t/tn0/sub")
        fs.rename("/t/tn0/a", "/t/tn0/sub/b")      # cross-directory, legal
        assert fs.tenant_stats()["tn0"]["used_pages"] == 2
        fs.rename("/t/tn0/sub/b", "/t/tn0/sub/c")  # same-directory, legal
        assert fs.tenant_stats()["tn0"]["used_pages"] == 2

    def test_rename_out_of_tenant_rejected(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        make_file(fs, "/t/tn0/a")
        fs.mkdir("/outside")
        with pytest.raises(FSError, match="cross-tenant rename"):
            fs.rename("/t/tn0/a", "/outside/a")
        assert fs.exists("/t/tn0/a") and not fs.exists("/outside/a")
        assert fs.tenant_stats()["tn0"]["used_pages"] == 1

    def test_rename_into_tenant_rejected(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        make_file(fs, "/loose")
        with pytest.raises(FSError, match="cross-tenant rename"):
            fs.rename("/loose", "/t/tn0/adopted")
        assert fs.exists("/loose") and not fs.exists("/t/tn0/adopted")
        assert fs.tenant_stats()["tn0"]["used_pages"] == 0

    def test_rename_across_tenants_rejected(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        fs.tenant_create("tn1")
        make_file(fs, "/t/tn0/a", npages=3)
        with pytest.raises(FSError, match="cross-tenant rename"):
            fs.rename("/t/tn0/a", "/t/tn1/a")
        stats = fs.tenant_stats()
        assert stats["tn0"]["used_pages"] == 3
        assert stats["tn1"]["used_pages"] == 0

    def test_directory_subtree_rename_rejected_across(self):
        """Moving a whole subtree would re-home every inode below it."""
        fs = build_fs()
        fs.tenant_create("tn0")
        fs.tenant_create("tn1")
        fs.mkdir("/t/tn0/tree")
        make_file(fs, "/t/tn0/tree/f", npages=2)
        with pytest.raises(FSError, match="cross-tenant rename"):
            fs.rename("/t/tn0/tree", "/t/tn1/tree")
        # Within the tenant the same subtree moves freely.
        fs.mkdir("/t/tn0/dst")
        fs.rename("/t/tn0/tree", "/t/tn0/dst/tree")
        assert fs.read(fs.lookup("/t/tn0/dst/tree/f"), 0, PAGE_SIZE) == PAGE
        assert fs.tenant_stats()["tn0"]["used_pages"] == 2

    def test_rename_outside_tenants_unaffected(self):
        fs = build_fs()
        fs.tenant_create("tn0")          # tenants exist, but not involved
        fs.mkdir("/a")
        fs.mkdir("/b")
        make_file(fs, "/a/f")
        fs.rename("/a/f", "/b/g")
        assert fs.exists("/b/g") and not fs.exists("/a/f")

    def test_live_accounting_matches_rebuild_after_renames(self):
        """The whole point of the fix: remounting must not change any
        tenant's usage after a rename workload."""
        fs = build_fs()
        fs.tenant_create("tn0")
        fs.tenant_create("tn1")
        make_file(fs, "/t/tn0/a", npages=2)
        make_file(fs, "/t/tn1/b", npages=1)
        fs.mkdir("/t/tn0/sub")
        fs.rename("/t/tn0/a", "/t/tn0/sub/a")
        with pytest.raises(FSError):
            fs.rename("/t/tn0/sub/a", "/t/tn1/a")
        settle(fs)
        before = fs.tenant_stats()
        fs2 = remount(fs)
        after = fs2.tenant_stats()
        for name in ("tn0", "tn1"):
            assert after[name]["used_pages"] == before[name]["used_pages"]
            assert after[name]["used_inodes"] == before[name]["used_inodes"]


class TestReflinkQuota:
    def test_reflink_charges_destination(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        make_file(fs, "/t/tn0/src", npages=3)
        fs.reflink("/t/tn0/src", "/t/tn0/clone")
        stats = fs.tenant_stats()["tn0"]
        assert stats["used_pages"] == 6          # 3 source + 3 clone mappings
        assert stats["used_inodes"] == 3         # root + src + clone

    def test_cross_tenant_reflink_charges_destination_tenant(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        fs.tenant_create("tn1")
        make_file(fs, "/t/tn0/src", npages=2)
        fs.reflink("/t/tn0/src", "/t/tn1/clone")
        stats = fs.tenant_stats()
        assert stats["tn0"]["used_pages"] == 2
        assert stats["tn1"]["used_pages"] == 2
        assert stats["tn1"]["used_inodes"] == 2  # root + clone

    def test_over_quota_reflink_atomic(self):
        """QuotaExceeded leaves no partial clone: no dst dentry, no
        orphan inode, no staged refcount, no usage movement."""
        fs = build_fs()
        fs.tenant_create("tight", quota_pages=3)
        make_file(fs, "/t/tight/src", npages=2)
        settle(fs)
        du_before = fs.du("/")
        with pytest.raises(QuotaExceeded):
            fs.reflink("/t/tight/src", "/t/tight/clone")
        assert not fs.exists("/t/tight/clone")
        stats = fs.tenant_stats()["tight"]
        assert stats["used_pages"] == 2
        assert stats["used_inodes"] == 2
        assert fs.du("/") == du_before
        # Raising the quota makes the identical reflink succeed.
        fs.tenant_set_quota("tight", quota_pages=4)
        fs.reflink("/t/tight/src", "/t/tight/clone")
        assert fs.tenant_stats()["tight"]["used_pages"] == 4

    def test_inode_quota_enforced_on_reflink(self):
        fs = build_fs()
        fs.tenant_create("tiny", quota_inodes=2)   # root + one file
        make_file(fs, "/t/tiny/src")
        with pytest.raises(QuotaExceeded):
            fs.reflink("/t/tiny/src", "/t/tiny/clone")
        assert not fs.exists("/t/tiny/clone")

    def test_unlink_clone_refunds_charge(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        make_file(fs, "/t/tn0/src", npages=2)
        fs.reflink("/t/tn0/src", "/t/tn0/clone")
        assert fs.tenant_stats()["tn0"]["used_pages"] == 4
        fs.unlink("/t/tn0/clone")
        stats = fs.tenant_stats()["tn0"]
        assert stats["used_pages"] == 2
        assert stats["used_inodes"] == 2
        # The source still reads back intact.
        assert fs.read(fs.lookup("/t/tn0/src"), 0, PAGE_SIZE) == PAGE

    def test_snapshot_not_charged_to_tenant_and_delete_restores(self):
        """Snapshots live outside /t: their clones are owned by nobody
        (operator space), so tenant usage is unchanged by snapshot
        create and delete alike."""
        fs = build_fs()
        fs.tenant_create("tn0")
        make_file(fs, "/t/tn0/f", npages=2)
        settle(fs)
        before = fs.tenant_stats()["tn0"]
        fs.snapshot("s1")
        assert fs.tenant_stats()["tn0"] == before
        fs.delete_snapshot("s1")
        assert fs.tenant_stats()["tn0"] == before
        with pytest.raises(FileNotFound):
            fs.delete_snapshot("s1")

    @pytest.mark.parametrize("variant",
                             [Variant.DELAYED, Variant.INLINE,
                              Variant.HYBRID],
                             ids=lambda v: v.value)
    def test_reflink_accounting_survives_remount(self, variant):
        """Rebuilt usage (index walk) must equal live usage (charges)."""
        fs = build_fs(variant)
        fs.tenant_create("tn0")
        fs.tenant_create("tn1")
        make_file(fs, "/t/tn0/src", npages=2)
        fs.reflink("/t/tn0/src", "/t/tn0/clone")
        fs.reflink("/t/tn0/src", "/t/tn1/borrowed")
        settle(fs)
        before = fs.tenant_stats()
        fs2 = remount(fs)
        after = fs2.tenant_stats()
        for name in ("tn0", "tn1"):
            assert after[name]["used_pages"] == before[name]["used_pages"], \
                f"{name}: rebuild disagrees with live accounting"
            assert after[name]["used_inodes"] == before[name]["used_inodes"]
        assert after["tn0"]["used_pages"] == 4
        assert after["tn1"]["used_pages"] == 2
