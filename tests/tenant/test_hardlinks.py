"""Hard links vs tenant ownership and quota accounting.

Live accounting charges an inode (and its pages) once at creation and
refunds once at the last unlink, so the mount-time rebuild must also
count each inode exactly once regardless of how many dentries reach it
— and a link reachable from two tenant subtrees must be impossible,
or live and rebuilt ownership would disagree (EXDEV-like semantics:
each tenant root behaves like its own filesystem).
"""

import pytest

from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.nova.fs import FSError

pytestmark = pytest.mark.tenant


def build_fs():
    fs, _ = make_fs(Variant.DELAYED,
                    Config(device_pages=1024, max_inodes=64))
    return fs


class TestRebuildCountsLinksOnce:
    def test_hardlinked_file_counted_once_after_remount(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        ino = fs.create("/t/tn0/a")
        fs.write(ino, 0, b"\x5c" * (2 * PAGE_SIZE))
        fs.link("/t/tn0/a", "/t/tn0/b")
        before = fs.tenant_stats()["tn0"]
        assert before["used_pages"] == 2      # charged per inode, not
        assert before["used_inodes"] == 2     # per dentry (root + file)
        fs.unmount()
        fs2 = type(fs).mount(fs.dev)
        after = fs2.tenant_stats()["tn0"]
        assert after["used_pages"] == before["used_pages"]
        assert after["used_inodes"] == before["used_inodes"]

    def test_no_spurious_quota_hit_after_remount(self):
        """Rebuilt usage == live usage, so a write that fit before the
        remount still fits after it."""
        fs = build_fs()
        fs.tenant_create("tn0", quota_pages=4)
        ino = fs.create("/t/tn0/a")
        fs.write(ino, 0, b"\x11" * (2 * PAGE_SIZE))
        fs.link("/t/tn0/a", "/t/tn0/b")
        fs.unmount()
        fs2 = type(fs).mount(fs.dev)
        assert fs2.tenant_stats()["tn0"]["used_pages"] == 2
        ino2 = fs2.create("/t/tn0/c")
        fs2.write(ino2, 0, b"\x22" * (2 * PAGE_SIZE))  # 4 <= quota: fits
        assert fs2.tenant_stats()["tn0"]["used_pages"] == 4


class TestCrossTenantLinksRejected:
    def test_link_between_tenants_fails(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        fs.tenant_create("tn1")
        ino = fs.create("/t/tn0/a")
        fs.write(ino, 0, b"\x33" * PAGE_SIZE)
        with pytest.raises(FSError):
            fs.link("/t/tn0/a", "/t/tn1/stolen")
        assert fs.tenant_stats()["tn1"]["used_pages"] == 0

    def test_link_across_tenant_boundary_fails_both_ways(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        fs.create("/t/tn0/a")
        fs.create("/plain")
        with pytest.raises(FSError):
            fs.link("/t/tn0/a", "/escapee")      # tenant -> outside
        with pytest.raises(FSError):
            fs.link("/plain", "/t/tn0/adopted")  # outside -> tenant

    def test_same_tenant_link_allowed_and_uncharged(self):
        fs = build_fs()
        fs.tenant_create("tn0")
        ino = fs.create("/t/tn0/a")
        fs.write(ino, 0, b"\x44" * PAGE_SIZE)
        used = fs.tenant_stats()["tn0"]
        fs.link("/t/tn0/a", "/t/tn0/b")
        assert fs.tenant_stats()["tn0"] == used  # no inode, no pages
        assert fs.lookup("/t/tn0/b") == ino

    def test_links_outside_tenant_roots_unaffected(self):
        fs = build_fs()
        fs.create("/a")
        fs.link("/a", "/b")                      # both untenanted: fine
        assert fs.lookup("/b") == fs.lookup("/a")
