"""Eq. 1-5 (§III): the inline-dedup impossibility argument, checked.

Evaluates the closed-form model over a duplicate-ratio grid and verifies
each inequality both analytically and against the simulator's measured
write paths (the model and simulator share one cost model, so this is a
consistency check, not a tautology — the simulator adds everything the
model's T_a glosses over).
"""

import numpy as np
from _common import emit

from repro.analysis import InlineModel, render_table
from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE

ALPHAS = [0.0, 0.25, 0.5, 0.75, 0.9]


def measured_write_ns(variant: Variant, alpha: float, nfiles: int = 40
                      ) -> float:
    """Mean per-write simulated cost on pre-created files."""
    from repro.workloads import DataGenerator

    fs, _ = make_fs(variant, Config(device_pages=2048, max_inodes=256))
    gen = DataGenerator(alpha, seed=3)
    inos = [fs.create(f"/f{i}") for i in range(nfiles)]
    t0 = fs.clock.now_ns
    for ino in inos:
        fs.write(ino, 0, gen.file_data(PAGE_SIZE))
    return (fs.clock.now_ns - t0) / nfiles


def build_rows():
    model = InlineModel()
    rows = []
    for alpha in ALPHAS:
        base = model.baseline_write_time(4096)
        inline = model.inline_write_time(4096, alpha)
        adaptive = model.adaptive_write_time(4096, alpha)
        rows.append([
            alpha,
            round(base / 1000, 2),
            round(inline / 1000, 2),
            round(adaptive / 1000, 2),
            model.eq3_holds(4096, alpha),
            model.eq5_holds(4096, alpha),
        ])
    return rows


def test_eq_model_inequalities(benchmark):
    rows = benchmark(build_rows)
    emit("eq_model", render_table(
        ["alpha", "baseline us", "inline us (Eq.2)",
         "adaptive us (Eq.4)", "Eq.3 holds", "Eq.5 holds"],
        rows,
        title="Eq. 1-5: inline dedup cannot beat the baseline on Optane",
    ))
    for row in rows:
        assert row[4] and row[5]
        assert row[2] > row[1]  # inline slower than baseline
        assert row[3] > row[1]  # adaptive slower than baseline


def test_model_matches_simulator(benchmark):
    """The measured write paths respect the same ordering as the model,
    at every duplicate ratio."""
    benchmark.pedantic(lambda: measured_write_ns(Variant.BASELINE, 0.5),
                       rounds=1, iterations=1)
    for alpha in (0.0, 0.5, 0.9):
        base = measured_write_ns(Variant.BASELINE, alpha)
        inline = measured_write_ns(Variant.INLINE, alpha)
        adaptive = measured_write_ns(Variant.INLINE_ADAPTIVE, alpha)
        offline = measured_write_ns(Variant.IMMEDIATE, alpha)
        assert inline > 1.5 * base, f"alpha={alpha}"
        assert adaptive > base, f"alpha={alpha}"
        assert offline < 1.05 * base, f"alpha={alpha}"
        # NVDedup's scheme does help inline — just not enough to win.
        if alpha < 0.4:
            assert adaptive < inline


def test_simulated_inline_slowdown_tracks_model(benchmark):
    model = InlineModel()
    predicted = model.inline_slowdown(4096, 0.5)
    base = benchmark.pedantic(
        lambda: measured_write_ns(Variant.BASELINE, 0.5), rounds=1,
        iterations=1)
    inline = measured_write_ns(Variant.INLINE, 0.5)
    measured = inline / base
    # Within a factor-ish band: the simulator adds entry/flush costs the
    # closed form folds into T_a.
    assert 0.5 * predicted <= measured <= 2.0 * predicted
