"""Table IV: file write latency vs deduplication latency breakdown.

Paper values (their testbed): 4 KB — write 2.85 µs, dedup 15.44 µs
(11.78 FP + 3.66 other); 128 KB — write 39.86 µs, dedup 268.83 µs
(215.26 FP + 53.57 other).  The claim to reproduce: fingerprinting is
5-6x the write latency, total dedup latency 6-7x.
"""

from _common import emit

from repro.analysis import latency_breakdown, render_table
from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.workloads import DataGenerator


def measure(file_size: int, nfiles: int = 50):
    """Per-file (write_ns, fp_ns, dedup_ns) on DeNova-Immediate."""
    fs, _ = make_fs(Variant.IMMEDIATE,
                    Config(device_pages=max(4096, nfiles * file_size
                                            // PAGE_SIZE * 3),
                           max_inodes=nfiles + 16))
    gen = DataGenerator(alpha=0.0, seed=9)
    inos = [fs.create(f"/f{i}") for i in range(nfiles)]
    datas = [gen.file_data(file_size) for _ in range(nfiles)]

    t0 = fs.clock.now_ns
    for ino, data in zip(inos, datas):
        fs.write(ino, 0, data)
    write_ns = (fs.clock.now_ns - t0) / nfiles

    fp_before = fs.fingerprinter.strong_time_ns
    t1 = fs.clock.now_ns
    fs.daemon.drain()
    dedup_ns = (fs.clock.now_ns - t1) / nfiles
    fp_ns = (fs.fingerprinter.strong_time_ns - fp_before) / nfiles
    return write_ns, fp_ns, dedup_ns


def build_rows():
    rows = []
    for label, size in (("4 KB", 4096), ("128 KB", 128 * 1024)):
        write_ns, fp_ns, dedup_ns = measure(size)
        bd = latency_breakdown(write_ns, fp_ns, dedup_ns)
        rows.append([label, round(bd.write_us, 2), round(bd.other_us, 2),
                     round(bd.fp_us, 2), round(bd.dedupe_us, 2),
                     round(bd.dedupe_us / bd.write_us, 1)])
    return rows


def test_table4_latency_breakdown(benchmark):
    rows = benchmark(build_rows)
    emit("table4_latency", render_table(
        ["file size", "write us", "other ops us", "FP time us",
         "dedup total us", "dedup/write"],
        rows,
        title="Table IV: write latency vs dedup latency "
              "(paper: 2.85/15.44 us @4KB, 39.86/268.83 us @128KB)",
    ))
    for label, write_us, other_us, fp_us, dedup_us, ratio in rows:
        # Paper: FP time is 4-6x write latency; total dedup 5-8x.
        assert 3.0 <= fp_us / write_us <= 8.0, label
        assert 4.0 <= ratio <= 10.0, label
        assert fp_us > other_us  # fingerprinting dominates dedup


def test_table4_absolute_4kb_regime(benchmark):
    """4 KB FP time should land near the paper's 11.78 us (same SHA-1
    throughput class as their Xeon)."""
    _w, fp_ns, _d = benchmark.pedantic(lambda: measure(4096, nfiles=30),
                                       rounds=1, iterations=1)
    assert 9_000 <= fp_ns <= 16_000
