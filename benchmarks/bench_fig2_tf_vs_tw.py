"""Fig. 2: fingerprinting time (T_f) vs device write time (T_w) by size.

The paper's observation: at every write size, T_w never exceeds T_f on
Optane DC PM.  We measure both in the simulator (actual SHA-1 pipeline
vs actual device write, simulated time) and print the proportion split
the figure shows, next to the closed-form model.
"""

from _common import emit

from repro.analysis import InlineModel, render_table
from repro.dedup.fingerprint import Fingerprinter, chunk_pages
from repro.pm import OPTANE_DCPM, PMDevice, SimClock

SIZES = [4096, 16384, 65536, 262144, 1 << 20]


def measure(size: int) -> tuple[float, float]:
    """Measured (T_w, T_f) in simulated ns for one write of ``size``."""
    dev = PMDevice(4 << 20, model=OPTANE_DCPM, clock=SimClock())
    data = bytes(range(256)) * (size // 256)
    t0 = dev.clock.now_ns
    dev.write(0, data, nt=True)
    dev.sfence()
    t_w = dev.clock.now_ns - t0

    fp = Fingerprinter(OPTANE_DCPM.cpu, dev.clock)
    t1 = dev.clock.now_ns
    for chunk in chunk_pages(dev.read(0, size)):
        fp.strong(chunk)
    t_f = dev.clock.now_ns - t1
    return t_w, t_f


def build_rows():
    model = InlineModel()
    rows = []
    for size in SIZES:
        t_w, t_f = measure(size)
        share = t_f / (t_f + t_w)
        rows.append([
            f"{size // 1024} KB",
            round(t_w / 1000, 2),
            round(t_f / 1000, 2),
            f"{share:.0%}",
            round(model.t_w(size) / 1000, 2),
            round(model.t_f(size) / 1000, 2),
        ])
    return rows


def test_fig2_tf_dominates_tw(benchmark):
    rows = benchmark(build_rows)
    emit("fig2_tf_vs_tw", render_table(
        ["write size", "T_w us (meas)", "T_f us (meas)", "T_f share",
         "T_w us (model)", "T_f us (model)"],
        rows,
        title="Fig. 2: fingerprint vs write time on emulated Optane DC PM",
    ))
    # The paper's claim: T_w never exceeds T_f, at any write size.
    for row in rows:
        t_w, t_f = row[1], row[2]
        assert t_f > t_w, f"T_f must dominate at {row[0]}"
        share = float(row[3].rstrip("%")) / 100
        assert share >= 0.6  # fingerprinting is the bulk of the pipeline


def test_fig2_table4_consistency(benchmark):
    """The 4 KB measurement must sit in Table IV's regime (~11.8 us FP)."""
    _t_w, t_f = benchmark.pedantic(lambda: measure(4096), rounds=1,
                                   iterations=1)
    assert 10_000 <= t_f <= 16_000
