"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures as text:
the rows/series are printed and also written to ``benchmarks/results/``
so EXPERIMENTS.md can reference stable artifacts.  Wall-clock timing of
the simulator itself goes through pytest-benchmark; the *scientific*
numbers are simulated-time measurements inside the run.
"""

from __future__ import annotations

import pathlib

RESULTS = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / f"{name}.txt").write_text(text + "\n")


def rel(a: float, b: float) -> float:
    """Relative difference of a vs b (positive = a is larger)."""
    return (a - b) / b if b else 0.0
