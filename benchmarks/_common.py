"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures as text:
the rows/series are printed and also written to ``benchmarks/results/``
so EXPERIMENTS.md can reference stable artifacts.  Wall-clock timing of
the simulator itself goes through pytest-benchmark; the *scientific*
numbers are simulated-time measurements inside the run.
"""

from __future__ import annotations

import json
import pathlib

RESULTS = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / f"{name}.txt").write_text(text + "\n")


def emit_metrics(name: str, snapshots: dict) -> None:
    """Persist per-benchmark metric snapshots as JSON.

    ``snapshots`` maps a label (variant/mode name) to a
    ``repro.metrics/1`` snapshot (``fs.obs.snapshot()`` or
    ``RunResult.metrics``), so ``BENCH_*.json`` entries carry full
    histograms — p50/p95/p99 per latency metric — not just means.
    """
    RESULTS.mkdir(exist_ok=True)
    path = RESULTS / f"{name}.metrics.json"
    path.write_text(json.dumps(snapshots, indent=2) + "\n")
    print(f"[metrics] wrote {path}")


def rel(a: float, b: float) -> float:
    """Relative difference of a vs b (positive = a is larger)."""
    return (a - b) / b if b else 0.0
