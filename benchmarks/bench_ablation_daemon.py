"""Ablation: dedup daemon capacity vs write arrival rate.

Offline dedup only stays "free" while the single-threaded DD keeps up
with the foreground (§IV-B2's (n, m) tunables exist for exactly this).
Sweep the arrival rate (via think time) and measure the backlog the DWQ
accumulates, the lingering p90, and how long past the foreground the
daemon needs to drain — the capacity-planning curve for deploying
DeNova.
"""

from _common import emit

from repro.analysis import percentile, render_table
from repro.core import Config, Variant, make_fs
from repro.workloads import DDMode, run_workload, small_file_job

THINK_RATIOS = [0.0, 1.0, 2.5, 5.0]  # 0 = writes arrive back to back
N_FILES = 300


def run_ratio(think_ratio: float):
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=8192,
                                              max_inodes=N_FILES + 32))
    spec = small_file_job(nfiles=N_FILES, dup_ratio=0.5).with_(
        think_ratio=think_ratio)
    res = run_workload(fs, spec, dd=DDMode.immediate())
    lag = (res.total_ns - res.foreground_ns) / 1e6
    return {
        "think": think_ratio,
        "dwq_peak": res.dwq_peak,
        "p90_ms": percentile(res.lingering_ns, 0.9) / 1e6,
        "drain_lag_ms": lag,
        "fg_ms": res.foreground_ns / 1e6,
        "dd_busy_ms": res.dd_busy_ns / 1e6,
    }


def test_daemon_capacity_curve(benchmark):
    results = benchmark.pedantic(
        lambda: [run_ratio(r) for r in THINK_RATIOS], rounds=1,
        iterations=1)
    rows = [[r["think"], r["dwq_peak"], round(r["p90_ms"], 3),
             round(r["drain_lag_ms"], 2), round(r["fg_ms"], 2),
             round(r["dd_busy_ms"], 2)]
            for r in results]
    emit("ablation_daemon", render_table(
        ["think ratio", "DWQ peak", "lingering p90 ms", "drain lag ms",
         "foreground ms", "DD busy ms"],
        rows,
        title="Ablation: daemon capacity vs arrival rate "
              "(single DD thread, immediate mode)",
    ))
    # Faster arrivals -> deeper backlog and longer post-run drain.
    peaks = [r["dwq_peak"] for r in results]
    assert peaks[0] > peaks[-1] * 3, peaks
    lags = [r["drain_lag_ms"] for r in results]
    assert lags[0] > lags[-1]
    # With enough think time the daemon keeps up: trivial backlog.
    assert results[-1]["dwq_peak"] <= 3
    assert results[-1]["drain_lag_ms"] < 0.2
    # Regardless of backlog, every node was eventually processed and the
    # same savings materialized (offline dedup degrades gracefully).
    # (run_workload asserts dd drain implicitly via total_ns >= fg.)


def test_delayed_batch_must_cover_arrivals(benchmark):
    """Delayed(n, m): if m < one interval's arrivals, the backlog grows
    without bound during the run; if m covers it, the queue stays near
    one interval's worth — the sizing rule for (n, m)."""
    def run(m):
        fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=8192,
                                                  max_inodes=N_FILES + 32))
        spec = small_file_job(nfiles=N_FILES, dup_ratio=0.5).with_(
            think_ratio=2.5)
        res = run_workload(fs, spec, dd=DDMode.delayed(1.0, m))
        return res.dwq_peak

    # ~48 arrivals/ms at think 2.5 -> interval of 1 ms holds ~48 nodes.
    starved = benchmark.pedantic(lambda: run(10), rounds=1, iterations=1)
    covered = run(200)
    assert starved > 2 * covered, (starved, covered)
