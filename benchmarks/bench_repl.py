"""Reverse dedup: restore-latest stays flat as the chain grows.

Forward fingerprint-level ingest (``repro.backup``) keeps the *oldest*
copy of every shared page, so the newest snapshot — the production
restore target — fragments as the chain grows: each ingest leaves the
latest file stitched together from pages laid down across all prior
rounds.  RevDedup inverts the indirection: an out-of-line relocation
pass (``repro.repl.relocate_latest``) re-sequentializes the newest
snapshot after every ingest and pushes the fragmentation onto the old
snapshots nobody restores.

The claim quantified here (the ISSUE's acceptance bar): across chain
lengths 1..8, restore-latest on the relocated target degrades by at
most **1.15x** (simulated elapsed time, relative to chain length 1)
while the forward target degrades measurably more — its physical run
count, and with it the per-request overhead, grows with every round.

Numbers land in ``benchmarks/results/repl_baseline.json``
(``repro.repl_baseline/1``) for EXPERIMENTS.md and the
``compare.py --repl`` perf gate.
"""

import io
import json

from _common import RESULTS, emit

from repro.analysis import render_table
from repro.backup import receive_backup, send_backup
from repro.dedup import DeNovaFS
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock
from repro.repl import relocate_latest, restore_snapshot

N_PAGES = 64     # data pages in the replicated file
STRIDE = 4       # each round rewrites every 4th page (rotating offset)
CHAIN_LEN = 8


def make_fs(pages=16384):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def distinct_page(i: int) -> bytes:
    return i.to_bytes(4, "little") * (PAGE_SIZE // 4)


def measure(chain_len: int = CHAIN_LEN, n_pages: int = N_PAGES) -> list:
    """Grow one source chain; replicate each link to a forward-only and
    a relocated target; restore-latest on both after every link."""
    src = make_fs()
    ino = src.create("/f")
    src.write(ino, 0, b"".join(distinct_page(i) for i in range(n_pages)))
    src.daemon.drain()

    fwd, rev = make_fs(), make_fs()
    rows = []
    prev = None
    for length in range(1, chain_len + 1):
        if length > 1:
            # Rotate the rewritten stripe so the latest file mixes page
            # ages — the fragmentation driver for forward ingest.
            for p in range(n_pages):
                if p % STRIDE == length % STRIDE:
                    src.write(ino, p * PAGE_SIZE,
                              distinct_page(1000 * length + p))
            src.daemon.drain()
        name = f"s{length}"
        src.snapshot(name)
        buf = io.BytesIO()
        send_backup(src, name, buf, base=prev)
        stream = buf.getvalue()
        receive_backup(fwd, io.BytesIO(stream))
        receive_backup(rev, io.BytesIO(stream))
        while not relocate_latest(rev)["done"]:
            pass
        f = restore_snapshot(fwd, name)
        r = restore_snapshot(rev, name)
        rows.append({
            "chain_len": length,
            "fwd_requests": f["requests"],
            "rev_requests": r["requests"],
            "fwd_ns": f["elapsed_ns"],
            "rev_ns": r["elapsed_ns"],
        })
        prev = name
    for row in rows:
        row["fwd_ratio"] = round(row["fwd_ns"] / rows[0]["fwd_ns"], 4)
        row["rev_ratio"] = round(row["rev_ns"] / rows[0]["rev_ns"], 4)
    return rows


def _update_baseline(key, value):
    path = RESULTS / "repl_baseline.json"
    data = (json.loads(path.read_text()) if path.exists()
            else {"schema": "repro.repl_baseline/1"})
    data[key] = value
    RESULTS.mkdir(exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_restore_latest_flat_under_reverse_dedup(benchmark):
    rows = measure()
    benchmark.pedantic(lambda: measure(chain_len=2), rounds=1,
                       iterations=1)
    last = rows[-1]
    # The acceptance bar: reverse dedup holds restore-latest within
    # 1.15x of the length-1 chain; forward degrades measurably.
    assert last["rev_ratio"] <= 1.15, rows
    assert last["fwd_ratio"] > last["rev_ratio"], rows
    assert last["fwd_requests"] > last["rev_requests"], rows
    # Relocation reaches the floor: one read request for the single
    # hole-free file, at every chain length.
    assert all(r["rev_requests"] == 1 for r in rows), rows
    emit("repl_restore_chain", render_table(
        ["chain len", "fwd reqs", "rev reqs", "fwd ns (sim)",
         "rev ns (sim)", "fwd x", "rev x"],
        [[r["chain_len"], r["fwd_requests"], r["rev_requests"],
          r["fwd_ns"], r["rev_ns"], f"{r['fwd_ratio']:.2f}",
          f"{r['rev_ratio']:.2f}"] for r in rows],
        title=f"Restore-latest vs chain length ({N_PAGES} pages, "
              f"stripe rewrite 1/{STRIDE} per link)"))
    _update_baseline("restore_chain", rows)
