"""Fig. 11: write vs overwrite throughput, NOVA vs DeNova-Immediate.

Paper claims to reproduce (normalized to each system's write throughput):

* baseline NOVA overwrites are slightly *faster* than writes (+1 %
  large, +3 % small) — no inode/dentry creation;
* DeNova overwrites are *slower* than writes (-5 % small, -18 % large):
  reclaiming each CoW-displaced page walks FACT through the delete
  pointer and pays the cache-line-flushed count updates, with large
  files paying more flushes per file.
"""

import pytest
from _common import emit

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.workloads import Mode, large_file_job, run_workload, small_file_job
from repro.workloads.runner import prepopulate


def write_vs_overwrite(variant, jobf, nfiles):
    cfg = Config(device_pages=8192, max_inodes=nfiles + 32)
    fs, dd = make_fs(variant, cfg)
    spec = jobf(nfiles=nfiles, dup_ratio=0.0)
    w = run_workload(fs, spec, dd=dd)
    # Let the daemon finish so overwrite reclaims deduplicated pages.
    if hasattr(fs, "daemon"):
        fs.daemon.drain()
    inos = [fs.lookup(f"/t0/f{i}") for i in range(nfiles)]
    o = run_workload(fs, spec.with_(mode=Mode.OVERWRITE, seed=99), dd=dd,
                     inos=inos)
    return w.throughput_mb_s, o.throughput_mb_s


def build():
    out = {}
    for jobf, nfiles, label in ((small_file_job, 250, "small"),
                                (large_file_job, 40, "large")):
        for variant in (Variant.BASELINE, Variant.IMMEDIATE):
            w, o = write_vs_overwrite(variant, jobf, nfiles)
            out[(label, variant)] = (w, o, o / w)
    return out


def test_fig11_overwrite(benchmark):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [[label, variant.value, round(w, 1), round(o, 1),
             f"{ratio - 1:+.1%}"]
            for (label, variant), (w, o, ratio) in data.items()]
    emit("fig11_overwrite", render_table(
        ["workload", "variant", "write MB/s", "overwrite MB/s",
         "overwrite vs write"],
        rows,
        title="Fig. 11: overwrite vs write (paper: NOVA +1..3%, "
              "DeNova -5% small / -18% large)",
    ))

    for label in ("small", "large"):
        nova_ratio = data[(label, Variant.BASELINE)][2]
        deno_ratio = data[(label, Variant.IMMEDIATE)][2]
        # NOVA: overwrite at least as fast as write.
        assert nova_ratio >= 0.995, f"{label}: NOVA overwrite regressed"
        # DeNova: overwrite visibly slower than its own write.
        assert deno_ratio < nova_ratio, label
        assert deno_ratio < 0.99, \
            f"{label}: DeNova reclaim cost invisible ({deno_ratio:.3f})"
    # The paper's asymmetry: large files lose more than small files.
    small_drop = 1 - data[("small", Variant.IMMEDIATE)][2]
    large_drop = 1 - data[("large", Variant.IMMEDIATE)][2]
    assert large_drop > small_drop, (small_drop, large_drop)


def test_fig11_nova_create_overhead_explains_gap(benchmark):
    """The +small% for NOVA comes from create-time work; verify directly
    by measuring a create-only job's cost share."""
    def run():
        fs, dd = make_fs(Variant.BASELINE, Config(device_pages=4096,
                                                  max_inodes=512))
        spec = small_file_job(nfiles=100)
        w = run_workload(fs, spec, dd=dd)
        inos = [fs.lookup(f"/t0/f{i}") for i in range(100)]
        o = run_workload(fs, spec.with_(mode=Mode.OVERWRITE, seed=4),
                         dd=dd, inos=inos)
        return w, o

    w, o = benchmark.pedantic(run, rounds=1, iterations=1)
    # Overwrite does strictly fewer operations -> lower mean latency.
    assert o.mean_op_latency_us < w.mean_op_latency_us
