"""Multi-tenant isolation: noisy-neighbor p99 with and without QoS.

The claim to quantify: with weighted-fair QoS on (DRR admission in
front of the bandwidth slots plus per-tenant DWQ shares), a
well-behaved tenant's p99 write latency under a noisy neighbor
saturating the bounded DWQ stays within 2x its unloaded p99; with QoS
off the same scenario blows its p99 up unboundedly (the aggressor
queues ahead of the victim everywhere).

Three fleet runs on identical hardware/spec, differing only in load
and QoS:

* ``unloaded``   — victim alone (aggressor writes its 1 zipf-tail file);
* ``noisy/off``  — aggressor bursts, QoS disabled (recorded blow-up);
* ``noisy/on``   — aggressor bursts, QoS enabled (isolation bound).

Numbers land in ``benchmarks/results/tenant_baseline.json``
(``repro.tenant_baseline/1``) for EXPERIMENTS.md and the
``compare.py --tenants`` regression check.
"""

import json

from _common import RESULTS, emit

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.workloads.fleet import FleetSpec, run_fleet
from repro.workloads.runner import DDMode

VICTIM_FILES = 16        # well-behaved tenant tn0
BURST_FILES = 48         # noisy tenant tn1's no-think burst
FILE_SIZE = 32 * 1024
#: Victim weight 8 vs aggressor 1: the aggressor's DWQ share collapses
#: to ~2 of 16 slots and the DRR gate grants the victim 8 per round —
#: the configuration an operator would pick for a latency-sensitive
#: tenant sharing a box with batch traffic.
WEIGHTS = {"tn0": 8, "tn1": 1}
QOS_BOUND = 2.0          # acceptance: qos p99 <= 2x unloaded p99


def _spec(noisy: bool) -> FleetSpec:
    # zipf_s=10 pins the aggressor's base share to 1 file, so the
    # victim's own workload is byte-identical across all three runs.
    return FleetSpec(tenants=2, base_files=VICTIM_FILES,
                     file_size=FILE_SIZE, zipf_s=10.0, dup_ratio=0.5,
                     think_ratio=0.5,
                     noisy_tenant=1 if noisy else None,
                     noisy_burst_files=BURST_FILES if noisy else 0,
                     seed=7)


def run_point(noisy: bool, qos: bool) -> dict:
    fs, _dd = make_fs(Variant.DELAYED,
                      Config(device_pages=16384, max_inodes=512, cpus=4))
    # Immediate worker mode: a DWQ stall then measures *queueing behind
    # the neighbor*, not the delayed daemon's 750 ms wakeup timer.
    res = run_fleet(fs, _spec(noisy), dd=DDMode.immediate(), bw_slots=2,
                    workers=1, shards=4, max_shard_depth=4, qos=qos,
                    weights=WEIGHTS)
    victim = res.per_tenant["tn0"]
    return {
        "qos": qos,
        "noisy": noisy,
        "victim_files": victim["files"],
        "victim_p50_ns": victim["p50_ns"],
        "victim_p99_ns": victim["p99_ns"],
        "aggressor_files": res.per_tenant["tn1"]["files"],
        "stalls": res.stalls,
        "total_ms": res.total_ns / 1e6,
    }


def measure() -> dict:
    unloaded = run_point(noisy=False, qos=True)
    noqos = run_point(noisy=True, qos=False)
    qos = run_point(noisy=True, qos=True)
    base = unloaded["victim_p99_ns"] or 1.0
    return {
        "schema": "repro.tenant_baseline/1",
        "victim_files": VICTIM_FILES,
        "burst_files": BURST_FILES,
        "file_size": FILE_SIZE,
        "unloaded_p99_ns": unloaded["victim_p99_ns"],
        "noqos_p99_ns": noqos["victim_p99_ns"],
        "qos_p99_ns": qos["victim_p99_ns"],
        "noqos_ratio": noqos["victim_p99_ns"] / base,
        "qos_ratio": qos["victim_p99_ns"] / base,
        "qos_stalls": qos["stalls"],
        "points": {"unloaded": unloaded, "noqos": noqos, "qos": qos},
    }


def test_noisy_neighbor_isolation(benchmark):
    doc = measure()
    benchmark.pedantic(lambda: run_point(noisy=True, qos=True),
                       rounds=1, iterations=1)

    # The victim's own work is identical in all three runs.
    pts = doc["points"]
    assert (pts["unloaded"]["victim_files"] == pts["noqos"]["victim_files"]
            == pts["qos"]["victim_files"] == VICTIM_FILES)
    # ISSUE acceptance: QoS keeps the victim within 2x its unloaded p99.
    assert doc["qos_ratio"] <= QOS_BOUND, (
        f"QoS failed to isolate: victim p99 {doc['qos_p99_ns']:.0f} ns is "
        f"{doc['qos_ratio']:.2f}x unloaded ({doc['unloaded_p99_ns']:.0f})")
    # Without QoS the same burst measurably degrades the victim — the
    # recorded blow-up that motivates the scheduler.
    assert doc["noqos_ratio"] > doc["qos_ratio"], (
        f"no-QoS run ({doc['noqos_ratio']:.2f}x) should be worse than "
        f"QoS ({doc['qos_ratio']:.2f}x)")

    emit("tenant_isolation", render_table(
        ["run", "victim p50 us", "victim p99 us", "p99 vs unloaded",
         "aggressor files", "stalls"],
        [[name,
          f"{p['victim_p50_ns'] / 1000:.1f}",
          f"{p['victim_p99_ns'] / 1000:.1f}",
          f"{p['victim_p99_ns'] / (doc['unloaded_p99_ns'] or 1):.2f}x",
          p["aggressor_files"], p["stalls"]]
         for name, p in doc["points"].items()],
        title=f"Noisy-neighbor isolation ({VICTIM_FILES} victim files vs "
              f"{BURST_FILES}-file burst, DWQ depth 4x4)"))
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "tenant_baseline.json").write_text(
        json.dumps(doc, indent=2) + "\n")
