"""§III / §IV-C: dedup metadata footprints — DRAM-free vs DRAM-indexed.

Regenerates the paper's space-overhead arithmetic (FACT ≈ 3.2 % NVM with
zero DRAM; NVDedup ≈ 1.6 % NVM plus ≈ 0.6 % of capacity in DRAM) and
cross-checks the *actual* FACT region the filesystem formats against the
closed form.
"""

from _common import emit

from repro.analysis import (
    dram_index_overhead,
    fact_overhead,
    nvdedup_metadata_overhead,
    render_table,
)
from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE

GB = 1 << 30


def build_rows():
    rows = []
    for gb in (64, 256, 1024):
        size = gb * GB
        dram = dram_index_overhead(size) * size
        rows.append([
            f"{gb} GB",
            f"{fact_overhead(size):.3%}",
            "0",
            f"{nvdedup_metadata_overhead(size):.3%}",
            f"{dram / GB:.2f} GB",
            f"{dram / (32 * GB):.1%}",
        ])
    return rows


def test_metadata_overhead_table(benchmark):
    rows = benchmark(build_rows)
    emit("metadata_overhead", render_table(
        ["device", "FACT NVM", "FACT DRAM", "NVDedup NVM",
         "NVDedup DRAM index", "of 32GB server"],
        rows,
        title="Metadata space bills (paper: FACT 3.2% NVM + 0 DRAM; "
              "NVDedup 1.6% NVM + 0.6% in DRAM)",
    ))
    assert rows[0][1].startswith("3.12")     # ~3.2% in the paper
    assert rows[0][3].startswith("1.56")     # ~1.6%
    # 1 TB example: ~6 GB DRAM = 18.75% of a 32 GB server.
    assert rows[2][4].startswith("6.0")
    assert rows[2][5] == "18.8%"


def test_formatted_fact_matches_closed_form(benchmark):
    """The region mkfs actually reserves equals the paper's rule."""
    def fmt():
        fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=2 ** 13,
                                                  max_inodes=128))
        return fs

    fs = benchmark.pedantic(fmt, rounds=1, iterations=1)
    geo = fs.geo
    # n = ceil(log2(total pages)); 2^(n+1) entries of 64 B.
    assert geo.fact_prefix_bits == 13
    assert geo.fact_entries == 2 ** 14
    measured = geo.fact_bytes / (geo.total_pages * PAGE_SIZE)
    assert abs(measured - fact_overhead(geo.total_pages * PAGE_SIZE)) < 1e-9
    # And the runtime table is DRAM-free: its only volatile state is the
    # rebuildable IAA free list + counters.
    occ = fs.fact.occupancy()
    assert occ["bytes"] == geo.fact_bytes


def test_dwq_dram_footprint_bounded(benchmark):
    """The one DRAM structure DeNova does keep (the DWQ) stays small
    under immediate mode — §V-B2's conclusion."""
    from repro.workloads import DDMode, run_workload, small_file_job

    def run():
        fs, dd = make_fs(Variant.IMMEDIATE, Config(device_pages=8192,
                                                   max_inodes=512))
        spec = small_file_job(nfiles=400, dup_ratio=0.5).with_(
            think_ratio=2.5)
        return run_workload(fs, spec, dd=dd)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    # 16 B per node: peak DRAM for the queue is tiny.
    peak_bytes = res.dwq_peak * 16
    assert peak_bytes < 400 * 16 * 0.25, \
        f"immediate DWQ grew to {res.dwq_peak} nodes"
