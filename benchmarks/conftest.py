import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))
