"""Ablation: IAA chain reordering on/off (§IV-E).

A skewed reference pattern (one hot chunk behind a long collision chain)
with and without the DD's reordering: reordering must cut the NVM reads
per lookup for the hot entry, without perturbing chain contents.
"""

import hashlib

from _common import emit

from repro.analysis import render_table
from repro.dedup.fact import FACT
from repro.dedup.reorder import chain_order, reorder_chain
from repro.nova.layout import Geometry, PAGE_SIZE, Superblock
from repro.pm import OPTANE_DCPM, PMDevice, SimClock

N_BITS = 8
PREFIX = 0x2A
CHAIN = 10          # cold entries in front of the hot one
HOT_LOOKUPS = 300


def make_fact():
    dev = PMDevice(256 * PAGE_SIZE, model=OPTANE_DCPM, clock=SimClock())
    geo = Geometry.compute(256, max_inodes=16, with_dedup=True,
                           fact_prefix_bits=N_BITS)
    Superblock(dev).format(geo)
    return FACT(dev, geo)


def colliding_fp(salt: int) -> bytes:
    body = hashlib.sha1(salt.to_bytes(8, "little")).digest()
    head = int.from_bytes(body[:8], "big")
    head = (head & ((1 << (64 - N_BITS)) - 1)) | (PREFIX << (64 - N_BITS))
    return head.to_bytes(8, "big") + body[8:]


def run(reorder: bool):
    fact = make_fact()
    # A chain of cold entries, then the hot one at the tail.
    for s in range(CHAIN):
        idx = fact.insert(colliding_fp(s), 1 + s)
        fact.commit_uc(idx)
    hot_fp = colliding_fp(CHAIN)
    hot_idx = fact.insert(hot_fp, 1 + CHAIN)
    fact.commit_uc(hot_idx)
    # The hot chunk keeps getting written (dedup hits + RFC growth).
    for _ in range(6):
        fact.inc_uc(hot_idx)
        fact.commit_uc(hot_idx)
    if reorder:
        assert reorder_chain(fact, PREFIX)
    t0 = fact.dev.clock.now_ns
    steps = 0
    for _ in range(HOT_LOOKUPS):
        res = fact.lookup(hot_fp)
        assert res.found is not None and res.found.idx == hot_idx
        steps += res.steps
    return {
        "steps_per_lookup": steps / HOT_LOOKUPS,
        "ns_per_lookup": (fact.dev.clock.now_ns - t0) / HOT_LOOKUPS,
        "order": chain_order(fact, PREFIX),
        "fact": fact,
    }


def test_reorder_ablation(benchmark):
    off = run(reorder=False)
    on = benchmark.pedantic(lambda: run(reorder=True), rounds=1,
                            iterations=1)
    rows = [
        ["reorder OFF", round(off["steps_per_lookup"], 2),
         round(off["ns_per_lookup"])],
        ["reorder ON", round(on["steps_per_lookup"], 2),
         round(on["ns_per_lookup"])],
    ]
    emit("ablation_reorder", render_table(
        ["config", "NVM reads per hot lookup", "ns per hot lookup"],
        rows,
        title="Ablation: §IV-E chain reordering on a hot tail entry "
              f"(chain length {CHAIN + 1})",
    ))
    # The hot entry moves right behind the head: 2 reads instead of 11.
    assert off["steps_per_lookup"] == CHAIN + 1
    assert on["steps_per_lookup"] == 2
    assert on["ns_per_lookup"] < 0.4 * off["ns_per_lookup"]
    # Same membership either way.
    assert sorted(on["order"]) == sorted(off["order"])
    on["fact"].check_chains()
