"""Fig. 12: read throughput on deduplicated (shared) files.

Paper setup: two duplicate files A and B (4 GB each, scaled here); after
DeNova fully dedups them every data page is shared.  Two threads read A
and B concurrently; the reported number is the B-reader's throughput.
A second experiment overwrites A while B is read (CoW isolates them).

Claim to reproduce: **no degradation** — FACT is not on the read path
and shared pages are read-only, so DeNova equals NOVA in both the
read-only and the mixed read/write case.
"""

from _common import emit, rel

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.workloads import DataGenerator
from repro.workloads.runner import SimContext

FILE_PAGES = 64          # scaled stand-in for the paper's 4 GB files
PAGE = 4096


def setup(variant):
    fs, _dd = make_fs(variant, Config(device_pages=8192, max_inodes=64))
    gen = DataGenerator(alpha=0.0, seed=13)
    data = gen.file_data(FILE_PAGES * PAGE)
    a = fs.create("/A")
    b = fs.create("/B")
    fs.write(a, 0, data)
    fs.write(b, 0, data)       # byte-identical duplicate of A
    if hasattr(fs, "daemon"):
        fs.daemon.drain()      # "plenty of time for the DD to finish"
        shared = fs.space_stats()
        assert shared["physical_pages"] == FILE_PAGES  # fully shared
    return fs, a, b


def measure(variant, mixed: bool) -> float:
    """Simulated read throughput (MB/s) of the B-reader thread."""
    fs, a, b = setup(variant)
    ctx = SimContext(fs)
    done = {}

    def reader():
        t0 = ctx.eng.now
        moved = 0
        for _ in range(4):  # several passes over B
            for pg in range(FILE_PAGES):
                def _read(pg=pg):
                    return fs.read(b, pg * PAGE, PAGE)

                _, _cost = yield from ctx.op(_read, ino=b)
                moved += PAGE
        done["ns"] = ctx.eng.now - t0
        done["bytes"] = moved

    def other_thread():
        gen = DataGenerator(alpha=0.0, seed=77, stream=5)
        for _ in range(2):
            for pg in range(FILE_PAGES):
                if mixed:
                    data = gen.file_data(PAGE)

                    def _op(pg=pg, data=data):
                        return fs.write(a, pg * PAGE, data)
                else:
                    def _op(pg=pg):
                        return fs.read(a, pg * PAGE, PAGE)

                yield from ctx.op(_op, ino=a)

    ctx.eng.process(reader(), name="reader-B")
    ctx.eng.process(other_thread(), name="thread-A")
    ctx.eng.run()
    return (done["bytes"] / (1 << 20)) / (done["ns"] / 1e9)


def build():
    out = {}
    for workload, mixed in (("read-only", False), ("read+write", True)):
        for variant in (Variant.BASELINE, Variant.IMMEDIATE):
            out[(workload, variant)] = measure(variant, mixed)
    return out


def test_fig12_read_throughput(benchmark):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [[w, v.value, round(t, 1)] for (w, v), t in data.items()]
    emit("fig12_read", render_table(
        ["workload", "variant", "B-reader MB/s"],
        rows,
        title="Fig. 12: read throughput of the thread reading file B "
              "(B fully shares pages with A under DeNova)",
    ))
    for workload in ("read-only", "read+write"):
        nova = data[(workload, Variant.BASELINE)]
        deno = data[(workload, Variant.IMMEDIATE)]
        # No degradation: FACT is off the read path, pages are CoW.
        assert abs(rel(deno, nova)) < 0.02, \
            f"{workload}: DeNova read {rel(deno, nova):+.1%} vs NOVA"


def test_reads_never_touch_fact(benchmark):
    fs, a, b = benchmark.pedantic(lambda: setup(Variant.IMMEDIATE),
                                  rounds=1, iterations=1)
    lookups_before = fs.fact.stats["lookups"]
    reads_before = fs.dev.stats.reads
    for pg in range(FILE_PAGES):
        fs.read(b, pg * PAGE, PAGE)
    assert fs.fact.stats["lookups"] == lookups_before
    assert fs.dev.stats.reads == reads_before + FILE_PAGES


def test_mixed_workload_cow_isolation(benchmark):
    """Overwriting A never perturbs B's bytes (shared pages are CoW'd)."""
    def run():
        fs, a, b = setup(Variant.IMMEDIATE)
        before = fs.read(b, 0, FILE_PAGES * PAGE)
        gen = DataGenerator(alpha=0.0, seed=5, stream=9)
        fs.write(a, 0, gen.file_data(FILE_PAGES * PAGE))
        fs.daemon.drain()
        after = fs.read(b, 0, FILE_PAGES * PAGE)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert before == after
