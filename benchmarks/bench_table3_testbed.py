"""Table III: testbed specification — the simulated analogue.

The paper's testbed is a 2-socket Xeon Gold 5218R with 64 GB of
DRAM-emulated Optane PM on Linux 5.1.  This bench prints the simulated
counterpart (the calibrated cost model standing in for the hardware) and
asserts the calibration anchors that tie the two together.
"""

from _common import emit

from repro.analysis import render_table
from repro.core import Config, TESTBED, Variant, make_fs
from repro.pm import OPTANE_DCPM


def build_rows():
    cpu = OPTANE_DCPM.cpu
    return [
        ["CPU", TESTBED["cpu"]],
        ["SHA-1 throughput", f"{4096 / cpu.sha1_cost(4096) :.3f} B/ns "
                             f"(~{4096 / cpu.sha1_cost(4096) * 1000:.0f} MB/s)"],
        ["PM", TESTBED["pm"]],
        ["PM read latency", f"{TESTBED['pm_read_latency_ns']:.0f} ns"],
        ["PM write latency", f"{TESTBED['pm_write_latency_ns']:.0f} ns"],
        ["PM write stream", f"{OPTANE_DCPM.write_bw_bytes_per_ns:.1f} GB/s"],
        ["kernel", TESTBED["kernel"]],
        ["concurrency", "deterministic DES (see repro.sim)"],
    ]


def test_table3_testbed(benchmark):
    rows = benchmark(build_rows)
    emit("table3_testbed", render_table(
        ["component", "simulated analogue"], rows,
        title="Table III: testbed (paper: 2x Xeon Gold 5218R, 64 GB "
              "DRAM-emulated Optane, Linux 5.1)",
    ))
    # The anchors that make the analogue citable.
    assert 60 <= TESTBED["pm_write_latency_ns"] <= 100   # Table I band
    assert 150 <= TESTBED["pm_read_latency_ns"] <= 350
    mbps = 4096 / OPTANE_DCPM.cpu.sha1_cost(4096) * 1000
    assert 300 <= mbps <= 400  # Table IV's 11.78 us / 4 KB

    # And the default Config yields a mountable system on that testbed.
    fs, _ = make_fs(Variant.IMMEDIATE, Config())
    assert fs.mounted
