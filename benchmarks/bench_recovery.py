"""Recovery cost and completeness (§V-C, quantified).

Not a paper table per se — the paper argues recovery qualitatively — but
the repo's crash suites need a cost budget: how long (simulated) does an
unclean DeNova mount take as the filesystem grows, how much work do the
individual recovery passes do, and how much the two fast paths buy —
the clean-unmount checkpoint against the full scan, and per-CPU
parallel replay against sequential.
"""

import json

from _common import RESULTS, emit

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.dedup import DeNovaFS
from repro.pm import PMDevice, SimClock
from repro.workloads import DataGenerator


def crashed_fs(nfiles: int, drained_fraction: float):
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=16384,
                                              max_inodes=nfiles + 32))
    gen = DataGenerator(alpha=0.5, seed=21)
    for i in range(nfiles):
        ino = fs.create(f"/f{i}")
        fs.write(ino, 0, gen.file_data(2 * 4096))
    fs.daemon.drain(limit=int(nfiles * drained_fraction))
    fs.dev.crash()
    fs.dev.recover_view()
    return fs.dev


def recover_once(nfiles: int, drained: float):
    dev = crashed_fs(nfiles, drained)
    t0 = dev.clock.now_ns
    fs = DeNovaFS.mount(dev)
    mount_ns = dev.clock.now_ns - t0
    rep = fs.last_recovery
    return {
        "mount_ms": mount_ns / 1e6,
        "inodes": rep.inodes_recovered,
        "entries": rep.entries_replayed,
        "dwq_rebuilt": rep.extra["dedup"]["dwq_rebuilt"],
        "uc_discarded": rep.extra["dedup"]["uc_discarded"],
        "fs": fs,
    }


def test_recovery_scales_with_filesystem(benchmark):
    sizes = [50, 150, 400]
    results = [recover_once(n, drained=0.5) for n in sizes]
    benchmark.pedantic(lambda: recover_once(100, 0.5), rounds=1,
                       iterations=1)
    rows = [[n, round(r["mount_ms"], 2), r["inodes"], r["entries"],
             r["dwq_rebuilt"]]
            for n, r in zip(sizes, results)]
    emit("recovery_cost", render_table(
        ["files", "unclean mount ms (sim)", "inodes", "entries replayed",
         "DWQ rebuilt"],
        rows,
        title="Unclean-mount recovery cost vs filesystem size",
    ))
    # Linear-ish growth in replayed work.
    assert results[-1]["entries"] > results[0]["entries"]
    assert results[-1]["mount_ms"] < 200, "recovery blew its budget"
    # Half the queue was unprocessed -> about half the nodes come back.
    for n, r in zip(sizes, results):
        assert abs(r["dwq_rebuilt"] - n // 2) <= n // 10


def test_recovered_fs_completes_outstanding_dedup(benchmark):
    res = benchmark.pedantic(lambda: recover_once(120, 0.25), rounds=1,
                             iterations=1)
    fs = res["fs"]
    fs.daemon.drain()
    st = fs.space_stats()
    assert st["space_saving"] > 0.3
    assert len(fs.dwq) == 0


def test_clean_mount_is_cheaper_than_unclean(benchmark):
    def once(clean: bool):
        fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=8192,
                                                  max_inodes=256))
        gen = DataGenerator(alpha=0.5, seed=3)
        for i in range(150):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, gen.file_data(4096))
        if clean:
            fs.daemon.drain()
            fs.unmount()
        else:
            fs.dev.crash()
            fs.dev.recover_view()
        t0 = fs.dev.clock.now_ns
        DeNovaFS.mount(fs.dev)
        return fs.dev.clock.now_ns - t0

    clean_ns = benchmark.pedantic(lambda: once(True), rounds=1,
                                  iterations=1)
    unclean_ns = once(False)
    # Unclean pays the FACT structural scan + flag scan on top.
    assert unclean_ns > clean_ns


# ---------------------------------------------------------- fast paths


def _built_fs(nfiles=300):
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=16384,
                                              max_inodes=nfiles + 32))
    gen = DataGenerator(alpha=0.5, seed=11)
    for i in range(nfiles):
        ino = fs.create(f"/f{i}")
        fs.write(ino, 0, gen.file_data(2 * 4096))
    fs.daemon.drain()
    return fs


def _clean_image(tmp_path, nfiles=300):
    fs = _built_fs(nfiles)
    fs.unmount()
    path = tmp_path / "clean.img"
    fs.dev.save_image(path)
    return path


def _crashed_image(tmp_path, nfiles=300):
    fs = _built_fs(nfiles)
    fs.dev.crash()
    fs.dev.recover_view()
    path = tmp_path / "crashed.img"
    fs.dev.save_image(path)
    return path


def _mount_ns(path, **kw):
    dev = PMDevice.load_image(path, clock=SimClock())
    t0 = dev.clock.now_ns
    fs = DeNovaFS.mount(dev, **kw)
    return dev.clock.now_ns - t0, fs


def _update_baseline(key, value):
    path = RESULTS / "recovery_baseline.json"
    data = (json.loads(path.read_text()) if path.exists()
            else {"schema": "repro.recovery_baseline/1"})
    data[key] = value
    RESULTS.mkdir(exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")


def test_checkpoint_remount_beats_full_scan_5x(benchmark, tmp_path):
    path = _clean_image(tmp_path)
    ck_ns, ck_fs = benchmark.pedantic(lambda: _mount_ns(path), rounds=1,
                                      iterations=1)
    full_ns, _ = _mount_ns(path, use_checkpoint=False)
    assert "checkpoint" in ck_fs.last_recovery.extra
    speedup = full_ns / ck_ns
    emit("recovery_checkpoint", render_table(
        ["mount path", "clean mount ms (sim)"],
        [["checkpoint", round(ck_ns / 1e6, 3)],
         ["full scan", round(full_ns / 1e6, 3)],
         ["speedup", f"{speedup:.1f}x"]],
        title="Clean remount: checkpoint fast path vs full scan "
              "(300 files)"))
    _update_baseline("clean_remount", {
        "files": 300,
        "checkpoint_ns": ck_ns,
        "full_scan_ns": full_ns,
        "speedup": round(speedup, 2),
    })
    assert speedup >= 5.0, f"checkpoint remount only {speedup:.1f}x faster"


def test_crash_replay_scales_with_workers(benchmark, tmp_path):
    path = _crashed_image(tmp_path)
    workers = (1, 2, 4, 8)
    times = {}
    for w in workers:
        ns, fs = _mount_ns(path, recovery_workers=w)
        times[w] = ns
        assert not fs.last_recovery.clean
    benchmark.pedantic(lambda: _mount_ns(path, recovery_workers=4),
                       rounds=1, iterations=1)
    emit("recovery_workers", render_table(
        ["recovery workers", "unclean mount ms (sim)", "speedup"],
        [[w, round(times[w] / 1e6, 3), f"{times[1] / times[w]:.2f}x"]
         for w in workers],
        title="Crash recovery: per-CPU parallel replay scaling "
              "(300 files)"))
    _update_baseline("crash_replay_by_workers", {
        "files": 300,
        "mount_ns": {str(w): times[w] for w in workers},
        "speedup_4_workers": round(times[1] / times[4], 2),
    })
    assert times[2] < times[1]
    assert times[4] < times[2]
    assert times[8] <= times[4]
