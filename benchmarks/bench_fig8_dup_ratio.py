"""Fig. 8: write throughput vs duplicate ratio, all variants.

Paper setup: 4 KB x 1M files (small) and 128 KB x 100k files (large),
single thread, 0.1 ms think per 0.1 ms I/O, duplicate ratio swept.
Claims to reproduce:

* DeNova-Inline loses > 50 % (small) / > 80 % (large) vs baseline NOVA;
* DeNova-Immediate and DeNova-Delayed lose < 1 %;
* inline improves only slightly as the duplicate ratio rises.
"""

import pytest
from _common import emit, rel

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.workloads import large_file_job, run_workload, small_file_job

ALPHAS = [0.0, 0.25, 0.5, 0.75]
VARIANTS = [Variant.BASELINE, Variant.INLINE, Variant.IMMEDIATE,
            Variant.DELAYED, Variant.HYBRID]

SMALL_N = 300   # scaled from 1,000,000 (shape is per-file-rate invariant)
LARGE_N = 40    # scaled from 100,000


def run_one(variant: Variant, jobf, nfiles: int, alpha: float):
    pages = 6144 if jobf is small_file_job else 4096
    cfg = Config(device_pages=pages, max_inodes=nfiles + 32,
                 delayed_interval_ms=0.75, delayed_batch=20000)
    fs, dd = make_fs(variant, cfg)
    spec = jobf(nfiles=nfiles, dup_ratio=alpha)
    return run_workload(fs, spec, dd=dd)


def sweep(jobf, nfiles):
    table: dict[Variant, list[float]] = {}
    for variant in VARIANTS:
        table[variant] = [
            run_one(variant, jobf, nfiles, a).throughput_mb_s
            for a in ALPHAS
        ]
    return table


def render(table, workload_name):
    rows = []
    for variant, tputs in table.items():
        base = table[Variant.BASELINE]
        rows.append([variant.value]
                    + [round(t, 1) for t in tputs]
                    + [f"{tputs[i] / base[i]:.1%}" for i in (0, len(ALPHAS) - 1)])
    return render_table(
        ["variant"] + [f"a={a}" for a in ALPHAS]
        + ["vs NOVA @a=0", f"vs NOVA @a={ALPHAS[-1]}"],
        rows,
        title=f"Fig. 8 ({workload_name}): write throughput MB/s vs "
              f"duplicate ratio (1 thread, think time on)",
    )


@pytest.mark.parametrize("jobf,nfiles,name,inline_floor", [
    (small_file_job, SMALL_N, "small 4KB files", 0.50),
    (large_file_job, LARGE_N, "large 128KB files", 0.60),
])
def test_fig8(benchmark, jobf, nfiles, name, inline_floor):
    table = benchmark.pedantic(lambda: sweep(jobf, nfiles), rounds=1,
                               iterations=1)
    emit(f"fig8_{jobf.__name__}", render(table, name))
    base = table[Variant.BASELINE]
    for i, alpha in enumerate(ALPHAS):
        # Offline dedup within 1% of baseline at every ratio.
        for v in (Variant.IMMEDIATE, Variant.DELAYED):
            drop = rel(base[i], table[v][i])
            assert drop < 0.015, \
                f"{v.value} dropped {drop:.1%} at alpha={alpha}"
        # Inline loses big.
        inline_drop = rel(base[i], table[Variant.INLINE][i])
        assert inline_drop / (1 + inline_drop) > inline_floor * 0.8, \
            f"inline only dropped {inline_drop:.1%} at alpha={alpha}"
        # Hybrid pays only the CRC pre-filter in the foreground: it must
        # land strictly between the pure modes — far above inline, and
        # within a bounded slice of baseline.
        hyb = table[Variant.HYBRID][i]
        assert hyb > 1.5 * table[Variant.INLINE][i], \
            f"hybrid not clearly above inline at alpha={alpha}"
        assert hyb <= 1.05 * base[i], \
            f"hybrid above baseline at alpha={alpha}"
        assert hyb >= 0.55 * base[i], \
            f"hybrid at {hyb / base[i]:.1%} of baseline at alpha={alpha}"
    # Inline improves slightly (but only slightly) with duplicate ratio.
    inline = table[Variant.INLINE]
    assert inline[-1] >= inline[0]
    assert inline[-1] < 1.5 * inline[0]


CROSSOVER_ALPHAS = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0]


def run_e2e(variant: Variant, alpha: float, nfiles: int = 200):
    """End-to-end-to-dedup-completion throughput for one point.

    Foreground throughput alone can never show a crossover: delayed
    always wins it (zero foreground hashing) and inline always loses it.
    The honest axis is wall time until the data is both durable *and*
    deduplicated — foreground run plus whatever drain the variant still
    owes afterwards.
    """
    cfg = Config(device_pages=6144, max_inodes=nfiles + 32,
                 delayed_interval_ms=0.75, delayed_batch=20000)
    fs, dd = make_fs(variant, cfg)
    spec = small_file_job(nfiles=nfiles, dup_ratio=alpha)
    res = run_workload(fs, spec, dd=dd)
    # total_ns spans the foreground run *and* the worker pool draining
    # the residual DWQ, so bytes/total is time-to-deduplicated-durable.
    e2e_mb_s = (res.bytes_moved / (1 << 20)) / (res.total_ns / 1e9)
    return e2e_mb_s, fs


def test_fig8_hybrid_crossover(benchmark):
    """The hybrid tentpole chart: where adaptive beats both pure modes.

    Inline pre-pays SHA-1 for every page; delayed defers all of it to a
    drain the foreground never sees but completion still waits for.
    Hybrid's CRC pre-filter only escalates weak hits to SHA-1, so its
    deferred bill scales with the duplicate ratio: at alpha=0 it owes
    nothing (beats delayed outright), and as alpha -> 1 every page is a
    weak hit and the hybrid curve converges onto pure-delayed from
    above while staying far clear of inline.
    """
    def sweep_e2e():
        rows = {v: [] for v in (Variant.INLINE, Variant.DELAYED,
                                Variant.HYBRID)}
        confirmed = []
        for alpha in CROSSOVER_ALPHAS:
            for v in rows:
                mb_s, fs = run_e2e(v, alpha)
                rows[v].append(mb_s)
                if v is Variant.HYBRID:
                    confirmed.append(fs.hybrid_stats()["weak_hits"])
        return rows, confirmed

    table, confirmed = benchmark.pedantic(sweep_e2e, rounds=1,
                                          iterations=1)
    inline = table[Variant.INLINE]
    delayed = table[Variant.DELAYED]
    hybrid = table[Variant.HYBRID]
    margins = [(h - d) / d for h, d in zip(hybrid, delayed)]
    emit("fig8_hybrid_crossover", render_table(
        ["alpha", "inline", "delayed", "hybrid", "hybrid vs delayed",
         "strong-hashed pages"],
        [[a, round(inline[i], 1), round(delayed[i], 1),
          round(hybrid[i], 1), f"{margins[i]:+.1%}", confirmed[i]]
         for i, a in enumerate(CROSSOVER_ALPHAS)],
        title="Fig. 8 crossover (small 4KB files): end-to-end MB/s "
              "(foreground + residual dedup drain) vs duplicate ratio",
    ))

    for i, alpha in enumerate(CROSSOVER_ALPHAS):
        # Hybrid never loses to either pure mode end-to-end...
        assert hybrid[i] >= 0.995 * delayed[i], \
            f"hybrid under delayed at alpha={alpha}"
        assert hybrid[i] > 1.4 * inline[i], \
            f"hybrid not clear of inline at alpha={alpha}"
    # ...wins outright where duplicates are scarce (nothing deferred)...
    assert margins[0] > 0.25, f"no low-alpha win: {margins[0]:+.1%}"
    # ...and converges onto pure-delayed as every page needs SHA-1.
    assert margins[-1] < 0.02, \
        f"hybrid did not converge with delayed at alpha=1: " \
        f"{margins[-1]:+.1%}"
    # The deferred strong-hash bill really does scale with alpha.
    assert confirmed[0] == 0
    assert confirmed[-1] >= 100  # alpha=1: ~all of the 200 pages confirm


def test_fig8_shape_is_scale_invariant(benchmark):
    """The scaled-down file counts are legitimate: the inline-vs-NOVA
    throughput ratio is a per-file quantity, stable across scales."""
    def ratio_at(nfiles):
        base = run_one(Variant.BASELINE, small_file_job, nfiles, 0.5)
        inline = run_one(Variant.INLINE, small_file_job, nfiles, 0.5)
        return inline.throughput_mb_s / base.throughput_mb_s

    r_small = benchmark.pedantic(lambda: ratio_at(100), rounds=1,
                                 iterations=1)
    r_large = ratio_at(400)
    assert abs(r_small - r_large) < 0.03, \
        f"inline/NOVA ratio drifted with scale: {r_small:.3f} vs " \
        f"{r_large:.3f}"


def test_fig8_space_savings_scale_with_alpha(benchmark):
    """The other half of the trade: savings actually materialize."""
    def sweep_savings():
        return [run_one(Variant.IMMEDIATE, small_file_job, 200,
                        alpha).space["space_saving"] for alpha in ALPHAS]

    savings = benchmark.pedantic(sweep_savings, rounds=1, iterations=1)
    assert savings[0] == 0.0
    for lo, hi in zip(savings, savings[1:]):
        assert hi >= lo
    assert savings[-1] >= 0.55  # alpha=0.75 ~> 70%+ saved
