"""Fig. 8: write throughput vs duplicate ratio, all variants.

Paper setup: 4 KB x 1M files (small) and 128 KB x 100k files (large),
single thread, 0.1 ms think per 0.1 ms I/O, duplicate ratio swept.
Claims to reproduce:

* DeNova-Inline loses > 50 % (small) / > 80 % (large) vs baseline NOVA;
* DeNova-Immediate and DeNova-Delayed lose < 1 %;
* inline improves only slightly as the duplicate ratio rises.
"""

import pytest
from _common import emit, rel

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.workloads import large_file_job, run_workload, small_file_job

ALPHAS = [0.0, 0.25, 0.5, 0.75]
VARIANTS = [Variant.BASELINE, Variant.INLINE, Variant.IMMEDIATE,
            Variant.DELAYED]

SMALL_N = 300   # scaled from 1,000,000 (shape is per-file-rate invariant)
LARGE_N = 40    # scaled from 100,000


def run_one(variant: Variant, jobf, nfiles: int, alpha: float):
    pages = 6144 if jobf is small_file_job else 4096
    cfg = Config(device_pages=pages, max_inodes=nfiles + 32,
                 delayed_interval_ms=0.75, delayed_batch=20000)
    fs, dd = make_fs(variant, cfg)
    spec = jobf(nfiles=nfiles, dup_ratio=alpha)
    return run_workload(fs, spec, dd=dd)


def sweep(jobf, nfiles):
    table: dict[Variant, list[float]] = {}
    for variant in VARIANTS:
        table[variant] = [
            run_one(variant, jobf, nfiles, a).throughput_mb_s
            for a in ALPHAS
        ]
    return table


def render(table, workload_name):
    rows = []
    for variant, tputs in table.items():
        base = table[Variant.BASELINE]
        rows.append([variant.value]
                    + [round(t, 1) for t in tputs]
                    + [f"{tputs[i] / base[i]:.1%}" for i in (0, len(ALPHAS) - 1)])
    return render_table(
        ["variant"] + [f"a={a}" for a in ALPHAS]
        + ["vs NOVA @a=0", f"vs NOVA @a={ALPHAS[-1]}"],
        rows,
        title=f"Fig. 8 ({workload_name}): write throughput MB/s vs "
              f"duplicate ratio (1 thread, think time on)",
    )


@pytest.mark.parametrize("jobf,nfiles,name,inline_floor", [
    (small_file_job, SMALL_N, "small 4KB files", 0.50),
    (large_file_job, LARGE_N, "large 128KB files", 0.60),
])
def test_fig8(benchmark, jobf, nfiles, name, inline_floor):
    table = benchmark.pedantic(lambda: sweep(jobf, nfiles), rounds=1,
                               iterations=1)
    emit(f"fig8_{jobf.__name__}", render(table, name))
    base = table[Variant.BASELINE]
    for i, alpha in enumerate(ALPHAS):
        # Offline dedup within 1% of baseline at every ratio.
        for v in (Variant.IMMEDIATE, Variant.DELAYED):
            drop = rel(base[i], table[v][i])
            assert drop < 0.015, \
                f"{v.value} dropped {drop:.1%} at alpha={alpha}"
        # Inline loses big.
        inline_drop = rel(base[i], table[Variant.INLINE][i])
        assert inline_drop / (1 + inline_drop) > inline_floor * 0.8, \
            f"inline only dropped {inline_drop:.1%} at alpha={alpha}"
    # Inline improves slightly (but only slightly) with duplicate ratio.
    inline = table[Variant.INLINE]
    assert inline[-1] >= inline[0]
    assert inline[-1] < 1.5 * inline[0]


def test_fig8_shape_is_scale_invariant(benchmark):
    """The scaled-down file counts are legitimate: the inline-vs-NOVA
    throughput ratio is a per-file quantity, stable across scales."""
    def ratio_at(nfiles):
        base = run_one(Variant.BASELINE, small_file_job, nfiles, 0.5)
        inline = run_one(Variant.INLINE, small_file_job, nfiles, 0.5)
        return inline.throughput_mb_s / base.throughput_mb_s

    r_small = benchmark.pedantic(lambda: ratio_at(100), rounds=1,
                                 iterations=1)
    r_large = ratio_at(400)
    assert abs(r_small - r_large) < 0.03, \
        f"inline/NOVA ratio drifted with scale: {r_small:.3f} vs " \
        f"{r_large:.3f}"


def test_fig8_space_savings_scale_with_alpha(benchmark):
    """The other half of the trade: savings actually materialize."""
    def sweep_savings():
        return [run_one(Variant.IMMEDIATE, small_file_job, 200,
                        alpha).space["space_saving"] for alpha in ALPHAS]

    savings = benchmark.pedantic(sweep_savings, rounds=1, iterations=1)
    assert savings[0] == 0.0
    for lo, hi in zip(savings, savings[1:]):
        assert hi >= lo
    assert savings[-1] >= 0.55  # alpha=0.75 ~> 70%+ saved
