"""Fig. 10: CDF of DWQ node lingering time.

Paper setup: 250,000 small files; DeNova-Immediate vs Delayed(n, m) for
several (n, m).  Claims to reproduce:

* Delayed modes produce a stair-like CDF (nodes drain in batches at
  trigger boundaries);
* growing n from 0 to 250 ms stretches the 90th-percentile lingering
  time by orders of magnitude (paper: +2,100 %);
* longer lingering = longer DWQ = more DRAM — Immediate is the best
  choice on those two axes (§V-B2's conclusion).
"""

from _common import emit, emit_metrics

from repro.analysis import cdf, percentile, render_series, render_table
from repro.core import Config, Variant, make_fs
from repro.workloads import DDMode, run_workload, small_file_job

N_FILES = 500  # scaled from 250,000

# Think ratio tuned so the daemon's service rate exceeds the arrival
# rate (as on the paper's testbed, where the immediate DWQ stays short):
# one dedup node costs ~15 us, one write cycle ~21 us at ratio 2.5.
THINK_RATIO = 2.5

MODES = [
    ("immediate", DDMode.immediate()),
    ("delayed(1ms,2000)", DDMode.delayed(1.0, 2000)),
    ("delayed(2.5ms,2000)", DDMode.delayed(2.5, 2000)),
    ("delayed(5ms,2000)", DDMode.delayed(5.0, 2000)),
]


def run_mode(dd: DDMode):
    fs, _ = make_fs(Variant.IMMEDIATE if dd.kind == "immediate"
                    else Variant.DELAYED,
                    Config(device_pages=8192, max_inodes=N_FILES + 32))
    spec = small_file_job(nfiles=N_FILES, dup_ratio=0.5).with_(
        think_ratio=THINK_RATIO)
    res = run_workload(fs, spec, dd=dd)
    assert res.dd_nodes == N_FILES
    return res


def build():
    out = {}
    snapshots = {}
    for name, dd in MODES:
        res = run_mode(dd)
        out[name] = {
            "lingering_ms": [t / 1e6 for t in res.lingering_ns],
            "p50": percentile(res.lingering_ns, 0.5) / 1e6,
            "p90": percentile(res.lingering_ns, 0.9) / 1e6,
            "p99": percentile(res.lingering_ns, 0.99) / 1e6,
            "dwq_peak": res.dwq_peak,
        }
        snapshots[name] = res.metrics
    # Fig. 10 as a metrics artifact: the dwq.residency_ns histogram in
    # each snapshot is the CDF's source data, per mode.
    emit_metrics("fig10_dwq_cdf", snapshots)
    return out


def test_fig10_dwq_lingering(benchmark):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [[name, round(d["p50"], 3), round(d["p90"], 3),
             round(d["p99"], 3), d["dwq_peak"]]
            for name, d in data.items()]
    text = render_table(
        ["mode", "p50 ms", "p90 ms", "p99 ms", "DWQ peak len"],
        rows,
        title="Fig. 10: DWQ lingering time percentiles and queue length",
    )
    # A compact CDF listing for the delayed stair shape.
    xs, ys = cdf(data["delayed(2.5ms,2000)"]["lingering_ms"])
    step = max(1, len(xs) // 12)
    text += "\n\n" + render_series(
        "CDF, delayed(2.5ms,2000)", [round(x, 3) for x in xs[::step]],
        [round(y, 3) for y in ys[::step]], "lingering ms", "fraction")
    emit("fig10_dwq_cdf", text)

    p90s = [data[name]["p90"] for name, _ in MODES]
    # Monotone growth of lingering with n, and a large total stretch.
    assert all(a <= b * 1.05 for a, b in zip(p90s, p90s[1:])), p90s
    assert p90s[-1] > 10 * max(p90s[0], 1e-6), \
        "delayed(4ms) must linger orders of magnitude beyond immediate"
    # Queue length (DRAM overhead) grows with n (§V-B2).
    peaks = [data[name]["dwq_peak"] for name, _ in MODES]
    assert peaks[-1] > peaks[0]


def test_fig10_stair_pattern(benchmark):
    """Delayed CDFs are stair-shaped when the batch m is smaller than one
    interval's arrivals: each trigger drains a tight lingering cluster,
    leaving flat CDF regions between clusters (the Fig. 10 stairs)."""
    res = benchmark.pedantic(lambda: run_mode(DDMode.delayed(2.0, 30)),
                             rounds=1, iterations=1)
    lingering_ms = sorted(t / 1e6 for t in res.lingering_ns)
    # Flat CDF regions == large x-gaps between consecutive samples.
    gaps = [b - a for a, b in zip(lingering_ms, lingering_ms[1:])]
    span = lingering_ms[-1] - lingering_ms[0]
    big_gaps = [g for g in gaps if g > 0.15 * 2.0]  # >15% of the interval
    assert len(big_gaps) >= 3, "no stair structure in the lingering CDF"
    assert span > 4.0  # backlogged nodes linger for multiple intervals
