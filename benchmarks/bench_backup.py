"""Backup replication costs: send size and ingest speed vs duplication.

Two claims to quantify, both direct corollaries of fingerprint-level
replication (the backup subsystem applies the paper's dedup machinery
across images instead of within one):

* an incremental send of a snapshot sharing k% of its blocks with the
  base ships only ~(100-k)% of the data — stream size scales with the
  *novel* fraction, not the tree size;
* recv throughput rises with the fraction of incoming pages the
  target's FACT already holds, because a duplicate page costs an RFC
  bump instead of a data copy.

Numbers land in ``benchmarks/results/backup_baseline.json``
(``repro.backup_baseline/1``) for EXPERIMENTS.md and regression checks.
"""

import io
import json

from _common import RESULTS, emit

from repro.analysis import render_table
from repro.backup import receive_backup, send_backup, verify_snapshot
from repro.dedup import DeNovaFS
from repro.nova import PAGE_SIZE
from repro.pm import DRAM, PMDevice, SimClock

N_PAGES = 64                      # data pages per snapshot
SHARE = [0, 25, 50, 75, 90]       # k: % of blocks shared with the base


def make_fs(pages=16384):
    dev = PMDevice(pages * PAGE_SIZE, model=DRAM, clock=SimClock())
    return DeNovaFS.mkfs(dev, max_inodes=256)


def distinct_page(i: int) -> bytes:
    """Deterministic, pairwise-distinct page payloads."""
    return i.to_bytes(4, "little") * (PAGE_SIZE // 4)


def _update_baseline(key, value):
    path = RESULTS / "backup_baseline.json"
    data = (json.loads(path.read_text()) if path.exists()
            else {"schema": "repro.backup_baseline/1"})
    data[key] = value
    RESULTS.mkdir(exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")


def _send_size(fs, name, base=None):
    buf = io.BytesIO()
    report = send_backup(fs, name, buf, base=base)
    return len(buf.getvalue()), report


def incremental_case(k: int):
    """s1 with N distinct pages; s2 shares k% of them with s1."""
    fs = make_fs()
    ino = fs.create("/f")
    fs.write(ino, 0, b"".join(distinct_page(i) for i in range(N_PAGES)))
    fs.daemon.drain()
    fs.snapshot("s1")
    changed = N_PAGES - round(N_PAGES * k / 100)
    for i in range(changed):
        fs.write(ino, i * PAGE_SIZE, distinct_page(1000 + i))
    fs.daemon.drain()
    fs.snapshot("s2")
    full_size, _ = _send_size(fs, "s2")
    incr_size, rep = _send_size(fs, "s2", base="s1")
    return {
        "share_pct": k,
        "changed_pages": changed,
        "novel_records": rep["records_total"],
        "base_shared_pages": rep["base_shared_pages"],
        "full_bytes": full_size,
        "incr_bytes": incr_size,
        "size_ratio": incr_size / full_size,
    }


def test_incremental_send_scales_with_novel_fraction(benchmark):
    rows = [incremental_case(k) for k in SHARE]
    benchmark.pedantic(lambda: incremental_case(50), rounds=1, iterations=1)
    for r in rows:
        # The (100-k)% property, exact at page granularity.
        assert r["novel_records"] == r["changed_pages"]
        assert r["base_shared_pages"] == N_PAGES - r["changed_pages"]
        want = r["changed_pages"] / N_PAGES
        assert abs(r["size_ratio"] - want) < 0.15  # header+trailer slack
    emit("backup_incremental", render_table(
        ["shared %", "novel records", "full B", "incr B", "incr/full"],
        [[r["share_pct"], r["novel_records"], r["full_bytes"],
          r["incr_bytes"], f"{r['size_ratio']:.2f}"] for r in rows],
        title=f"Incremental send size vs base-shared fraction "
              f"({N_PAGES} pages)"))
    _update_baseline("incremental_send", rows)


def recv_case(k: int):
    """Ingest N pages into a target already holding k% of them."""
    src = make_fs()
    ino = src.create("/f")
    src.write(ino, 0, b"".join(distinct_page(i) for i in range(N_PAGES)))
    src.daemon.drain()
    src.snapshot("s1")
    buf = io.BytesIO()
    send_backup(src, "s1", buf)
    buf.seek(0)

    dst = make_fs()
    held = round(N_PAGES * k / 100)
    if held:
        g = dst.create("/warm")
        dst.write(g, 0, b"".join(distinct_page(i) for i in range(held)))
        dst.daemon.drain()
    t0 = dst.dev.clock.now_ns
    rep = receive_backup(dst, buf)
    recv_ns = dst.dev.clock.now_ns - t0
    buf.seek(0)
    assert verify_snapshot(dst, buf)["ok"]

    t0 = dst.dev.clock.now_ns
    r = dst.lookup("/.snapshots/s1/f")
    data = dst.read(r, 0, N_PAGES * PAGE_SIZE)
    restore_ns = dst.dev.clock.now_ns - t0
    assert len(data) == N_PAGES * PAGE_SIZE
    mb = N_PAGES * PAGE_SIZE / 1e6
    return {
        "held_pct": k,
        "pages_dup": rep["pages_dup"],
        "pages_novel": rep["pages_novel"],
        "recv_ms": recv_ns / 1e6,
        "recv_mb_s": mb / (recv_ns / 1e9),
        "restore_mb_s": mb / (restore_ns / 1e9),
    }


def test_recv_throughput_rises_with_target_dup(benchmark):
    rows = [recv_case(k) for k in SHARE]
    benchmark.pedantic(lambda: recv_case(50), rounds=1, iterations=1)
    for r in rows:
        assert r["pages_dup"] == round(N_PAGES * r["held_pct"] / 100)
        assert r["pages_novel"] == N_PAGES - r["pages_dup"]
    # More duplicate hits => strictly less data movement => faster.
    assert rows[-1]["recv_ms"] < rows[0]["recv_ms"]
    emit("backup_recv_throughput", render_table(
        ["target holds %", "dup", "novel", "recv ms (sim)", "recv MB/s",
         "restore MB/s"],
        [[r["held_pct"], r["pages_dup"], r["pages_novel"],
          f"{r['recv_ms']:.2f}", f"{r['recv_mb_s']:.0f}",
          f"{r['restore_mb_s']:.0f}"] for r in rows],
        title=f"Ingest throughput vs duplicate ratio ({N_PAGES} pages)"))
    _update_baseline("recv_throughput", rows)
