#!/usr/bin/env python
"""Compare current benchmark numbers against committed baselines.

Two modes over the JSON baselines under ``benchmarks/results/``:

* ``--current FILE`` — diff a freshly produced results JSON against a
  committed baseline of the same shape, flagging every numeric leaf
  whose relative drift leaves the tolerance band.
* ``--quick`` — re-measure a small, deterministic subset of the fig. 9
  thread-scaling points (same Config/JobSpec as the full benchmark; the
  simulator is deterministic, so healthy code reproduces the committed
  throughput almost exactly) and check them against
  ``fig9_baseline.json``.

Exit status 1 when any point falls outside its band — the perf-smoke CI
job fails on regression.  The band is symmetric by default: an
unexplained speed*up* also invalidates the committed curves and should
be re-baselined deliberately, not absorbed silently.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).parent / "results"
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

# (job, variant value, thread count) -> exercised by --quick.  Chosen to
# cover the baseline fs, the delayed-dedup fs, and both sides of the
# small-file throughput peak (T=2) without the cost of a full sweep.
QUICK_POINTS = [
    ("small_file_job", "nova", 1),
    ("small_file_job", "nova", 4),
    ("small_file_job", "denova-delayed", 1),
    ("small_file_job", "denova-delayed", 4),
    ("small_file_job", "denova-hybrid", 4),
]
QUICK_NFILES = {"small_file_job": 192, "large_file_job": 48}


def iter_numeric_leaves(doc, path=()):
    """Yield (path-tuple, number) for every numeric leaf in a JSON doc."""
    if isinstance(doc, bool):
        return
    if isinstance(doc, (int, float)):
        yield path, float(doc)
    elif isinstance(doc, dict):
        for k in sorted(doc):
            yield from iter_numeric_leaves(doc[k], path + (str(k),))
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            yield from iter_numeric_leaves(v, path + (str(i),))


def compare_docs(current: dict, baseline: dict,
                 tolerance: float) -> list[dict]:
    """Aligned numeric leaves outside the relative tolerance band."""
    cur = dict(iter_numeric_leaves(current))
    violations = []
    for path, base in iter_numeric_leaves(baseline):
        if path not in cur:
            # A baselined metric the fresh run no longer produces is a
            # regression in its own right (a silently dropped series
            # would otherwise pass every remaining band forever).
            violations.append({"path": ".".join(path), "baseline": base,
                               "current": None, "drift": float("inf")})
            continue
        now = cur[path]
        if base == 0:
            drift = 0.0 if now == 0 else float("inf")
        else:
            drift = (now - base) / abs(base)
        if abs(drift) > tolerance:
            violations.append({"path": ".".join(path), "baseline": base,
                               "current": now, "drift": drift})
    return violations


def measure_quick_points():
    """Re-run QUICK_POINTS with the exact fig. 9 bench configuration."""
    from repro.core import Config, Variant, make_fs
    from repro.workloads import (large_file_job, run_workload,
                                 small_file_job)

    jobs = {"small_file_job": small_file_job,
            "large_file_job": large_file_job}
    by_value = {v.value: v for v in Variant}
    current: dict = {}
    for job_name, variant_value, threads in QUICK_POINTS:
        nfiles = QUICK_NFILES[job_name]
        cfg = Config(device_pages=8192, max_inodes=nfiles + 64, cpus=8,
                     delayed_interval_ms=0.75, delayed_batch=20000)
        fs, dd = make_fs(by_value[variant_value], cfg)
        spec = jobs[job_name](nfiles=nfiles, dup_ratio=0.5,
                              threads=threads)
        mb_s = run_workload(fs, spec, dd=dd).throughput_mb_s
        current.setdefault(job_name, {})[f"{variant_value}@T{threads}"] \
            = round(mb_s, 3)
        print(f"measured {job_name} {variant_value} T={threads}: "
              f"{mb_s:.1f} MB/s")
    return current


# Thread counts re-measured by --staging: the scaling knee and the
# fig. 9 small-write point the ISSUE's acceptance bar pins (T=16).
STAGING_THREADS = [4, 16]


def measure_staging_points() -> dict:
    """Re-run the staged/direct small-file points (bench_fig9_threads
    ``run_staged`` configuration) in-process."""
    from repro.core import Config, Variant, make_fs
    from repro.workloads import run_workload, small_file_job

    current: dict = {}
    for label, staging in (("staged", True), ("direct", False)):
        for threads in STAGING_THREADS:
            cfg = Config(device_pages=8192, max_inodes=192 + 64, cpus=8,
                         delayed_interval_ms=0.75, delayed_batch=20000,
                         staging=staging, staging_pages=512)
            fs, dd = make_fs(Variant.DELAYED, cfg)
            spec = small_file_job(nfiles=192, dup_ratio=0.5,
                                  threads=threads)
            mb_s = run_workload(fs, spec, dd=dd,
                                destage_workers=1).throughput_mb_s
            current.setdefault(label, {})[f"T{threads}"] = round(mb_s, 3)
            print(f"measured small_file_job {label} T={threads}: "
                  f"{mb_s:.1f} MB/s")
    return current


def staging_baseline_view(baseline: dict) -> dict:
    """Project fig9_staging.json onto the STAGING_THREADS key shape."""
    view: dict = {}
    for label in ("staged", "direct"):
        curve = baseline.get("throughput_mb_s", {}).get(label)
        if not curve:
            continue
        for threads in STAGING_THREADS:
            try:
                idx = baseline["threads"].index(threads)
            except (KeyError, ValueError):
                continue
            view.setdefault(label, {})[f"T{threads}"] = curve[idx]
    return view


# Numeric leaves of repl_baseline.json checked by --repl: request
# counts are the fragmentation signal (deterministic), the ratios the
# acceptance bar.
REPL_KEYS = ["fwd_requests", "rev_requests", "fwd_ratio", "rev_ratio"]


def measure_repl_points() -> dict:
    """Re-run the bench_repl restore-vs-chain-length curve in-process."""
    import bench_repl

    current: dict = {}
    for r in bench_repl.measure():
        current[f"L{r['chain_len']}"] = {k: r[k] for k in REPL_KEYS}
        print(f"measured chain_len={r['chain_len']}: "
              f"fwd {r['fwd_requests']} reqs ({r['fwd_ratio']:.2f}x), "
              f"rev {r['rev_requests']} reqs ({r['rev_ratio']:.2f}x)")
    return current


def repl_baseline_view(baseline: dict) -> dict:
    """Project repl_baseline.json onto the per-chain-length key shape."""
    view: dict = {}
    for r in baseline.get("restore_chain", []):
        view[f"L{r['chain_len']}"] = {k: r[k] for k in REPL_KEYS
                                      if k in r}
    return view


# Numeric leaves of tenant_baseline.json checked by --tenants.  The
# per-point dicts carry wall-clock-ish totals; the isolation claim
# lives in these p99s and ratios, so only they get a band.
TENANT_KEYS = ["unloaded_p99_ns", "noqos_p99_ns", "qos_p99_ns",
               "noqos_ratio", "qos_ratio"]


def measure_tenant_points() -> dict:
    """Re-run the three bench_tenants isolation points in-process."""
    import bench_tenants

    doc = bench_tenants.measure()
    current = {k: doc[k] for k in TENANT_KEYS}
    for k in TENANT_KEYS:
        print(f"measured {k}: {doc[k]:.6g}")
    return current


def tenant_baseline_view(baseline: dict) -> dict:
    """Project tenant_baseline.json onto the TENANT_KEYS shape."""
    return {k: baseline[k] for k in TENANT_KEYS if k in baseline}


def quick_baseline_view(baseline: dict) -> dict:
    """Project fig9_baseline.json onto the QUICK_POINTS key shape."""
    view: dict = {}
    for job_name, variant_value, threads in QUICK_POINTS:
        job = baseline.get(job_name)
        if not job:
            continue
        try:
            idx = job["threads"].index(threads)
            value = job["throughput_mb_s"][variant_value][idx]
        except (KeyError, ValueError, IndexError):
            continue
        view.setdefault(job_name, {})[f"{variant_value}@T{threads}"] = value
    return view


def report(violations: list[dict]) -> int:
    if not violations:
        print("OK: all points within the tolerance band")
        return 0
    print(f"REGRESSION: {len(violations)} point(s) outside the band")
    for v in sorted(violations, key=lambda v: -abs(v["drift"])):
        if v["current"] is None:
            print(f"  {v['path']}: baseline={v['baseline']:.6g} "
                  f"MISSING from the fresh run")
        else:
            print(f"  {v['path']}: baseline={v['baseline']:.6g} "
                  f"current={v['current']:.6g} drift={v['drift']:+.1%}")
    return 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="diff benchmark results against committed baselines")
    ap.add_argument("--baseline", default="fig9_baseline.json",
                    help="baseline JSON under benchmarks/results/ "
                         "(or a path)")
    ap.add_argument("--current",
                    help="results JSON to compare (default: --quick "
                         "re-measures)")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative band per numeric leaf (default 5%%)")
    ap.add_argument("--quick", action="store_true",
                    help="re-measure the quick fig9 points in-process")
    ap.add_argument("--tenants", action="store_true",
                    help="re-measure the tenant isolation points against "
                         "tenant_baseline.json")
    ap.add_argument("--staging", action="store_true",
                    help="re-measure the staged/direct fig9 small-write "
                         "points against fig9_staging.json (clean skip "
                         "when that baseline was never generated)")
    ap.add_argument("--repl", action="store_true",
                    help="re-measure the restore-vs-chain-length curve "
                         "against repl_baseline.json (clean skip when "
                         "that baseline was never generated)")
    args = ap.parse_args(argv)

    if args.tenants and args.baseline == "fig9_baseline.json":
        args.baseline = "tenant_baseline.json"
    if args.staging and args.baseline == "fig9_baseline.json":
        args.baseline = "fig9_staging.json"
    if args.repl and args.baseline == "fig9_baseline.json":
        args.baseline = "repl_baseline.json"
    base_path = pathlib.Path(args.baseline)
    if not base_path.exists():
        base_path = RESULTS / args.baseline
    if not base_path.exists():
        if args.staging or args.repl:
            # These curves are produced by their bench modules; a
            # checkout that never ran them simply has nothing to gate.
            print(f"skip: baseline {args.baseline} not present")
            return 0
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    baseline = json.loads(base_path.read_text())

    if args.current:
        current = json.loads(pathlib.Path(args.current).read_text())
    elif args.staging:
        current = measure_staging_points()
        baseline = staging_baseline_view(baseline)
        if not baseline:
            print("error: baseline has none of the staging points",
                  file=sys.stderr)
            return 2
        rc = report(compare_docs(current, baseline, args.tolerance))
        # The acceptance bar itself, independent of baseline drift: the
        # staged T=16 point must hold >= 3x its direct twin.
        staged16 = current["staged"]["T16"]
        direct16 = current["direct"]["T16"]
        if staged16 < 3 * direct16:
            print(f"REGRESSION: staged T=16 {staged16:.1f} MB/s is below "
                  f"3x direct {direct16:.1f} MB/s")
            rc = 1
        else:
            print(f"staging win at T=16: {staged16 / direct16:.1f}x")
        return rc
    elif args.repl:
        current = measure_repl_points()
        baseline = repl_baseline_view(baseline)
        if not baseline:
            print("error: baseline has none of the repl points",
                  file=sys.stderr)
            return 2
        rc = report(compare_docs(current, baseline, args.tolerance))
        # The acceptance bar itself, independent of baseline drift:
        # restore-latest under reverse dedup stays within 1.15x of the
        # length-1 chain while forward keeps fragmenting.
        deepest = max(current, key=lambda k: int(k[1:]))
        rev = current[deepest]["rev_ratio"]
        fwd_reqs = current[deepest]["fwd_requests"]
        rev_reqs = current[deepest]["rev_requests"]
        if rev > 1.15:
            print(f"REGRESSION: reverse restore at {deepest} is "
                  f"{rev:.2f}x the chain-1 cost (bar: 1.15x)")
            rc = 1
        elif fwd_reqs <= rev_reqs:
            print(f"REGRESSION: forward restore at {deepest} issues "
                  f"{fwd_reqs} requests vs reverse {rev_reqs} — the "
                  f"fragmentation the relocation should be absorbing "
                  f"is gone")
            rc = 1
        else:
            print(f"reverse dedup holds {rev:.2f}x at {deepest} "
                  f"({rev_reqs} reqs vs forward {fwd_reqs})")
        return rc
    elif args.tenants:
        current = measure_tenant_points()
        baseline = tenant_baseline_view(baseline)
        if not baseline:
            print("error: baseline has none of the tenant points",
                  file=sys.stderr)
            return 2
    elif args.quick:
        current = measure_quick_points()
        baseline = quick_baseline_view(baseline)
        if not baseline:
            print("error: baseline has none of the quick points",
                  file=sys.stderr)
            return 2
    else:
        ap.error("need --current FILE, --quick, or --tenants")

    return report(compare_docs(current, baseline, args.tolerance))


if __name__ == "__main__":
    sys.exit(main())
