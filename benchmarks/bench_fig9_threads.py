"""Fig. 9: write throughput vs thread count (duplicate ratio fixed 50%).

Paper claims to reproduce:

* throughput rises, peaks (small files around 2 threads, large around
  8), then declines "in a parabolic pattern";
* DeNova-Immediate / Delayed track baseline NOVA within ~1 % at *every*
  thread count (DWQ contention does not grow with threads);
* DeNova-Inline stays far below everything.
"""

import json

import pytest
from _common import RESULTS, emit, rel

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.workloads import large_file_job, run_workload, small_file_job

THREADS = [1, 2, 4, 8, 16, 32]
VARIANTS = [Variant.BASELINE, Variant.IMMEDIATE, Variant.DELAYED,
            Variant.INLINE, Variant.HYBRID]


def record_baseline(job_name: str, table: dict) -> None:
    """Merge this sweep into benchmarks/results/fig9_baseline.json.

    The committed baseline pins the thread-scaling curves the repro.conc
    runner produces, so future changes to the concurrency subsystem diff
    against known-good numbers instead of only shape assertions.
    """
    path = RESULTS / "fig9_baseline.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[job_name] = {
        "threads": THREADS,
        "throughput_mb_s": {v.value: [round(t, 3) for t in table[v]]
                            for v in VARIANTS},
    }
    RESULTS.mkdir(exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def run_one(variant, jobf, nfiles, threads):
    cfg = Config(device_pages=8192, max_inodes=nfiles + 64, cpus=8,
                 delayed_interval_ms=0.75, delayed_batch=20000)
    fs, dd = make_fs(variant, cfg)
    spec = jobf(nfiles=nfiles, dup_ratio=0.5, threads=threads)
    return run_workload(fs, spec, dd=dd).throughput_mb_s


def sweep(jobf, nfiles):
    return {v: [run_one(v, jobf, nfiles, t) for t in THREADS]
            for v in VARIANTS}


@pytest.mark.parametrize("jobf,nfiles,name,peak_at_most", [
    (small_file_job, 192, "small 4KB files", 4),
    (large_file_job, 48, "large 128KB files", 16),
])
def test_fig9(benchmark, jobf, nfiles, name, peak_at_most):
    table = benchmark.pedantic(lambda: sweep(jobf, nfiles), rounds=1,
                               iterations=1)
    rows = [[v.value] + [round(t, 1) for t in table[v]] for v in VARIANTS]
    emit(f"fig9_{jobf.__name__}", render_table(
        ["variant"] + [f"T={t}" for t in THREADS], rows,
        title=f"Fig. 9 ({name}): write throughput MB/s vs threads "
              f"(duplicate ratio 50%)",
    ))
    record_baseline(jobf.__name__, table)

    base = table[Variant.BASELINE]
    # Rise then parabolic decline.
    peak_idx = base.index(max(base))
    assert THREADS[peak_idx] <= peak_at_most, \
        f"peak at T={THREADS[peak_idx]}, expected <= {peak_at_most}"
    assert peak_idx > 0, "throughput must scale before the peak"
    assert base[-1] < base[peak_idx], "no post-peak decline"
    # Strictly decreasing after the peak (parabolic shape).
    tail = base[peak_idx:]
    assert all(a >= b for a, b in zip(tail, tail[1:]))

    # Offline dedup within ~1.5% of baseline at every thread count.
    for i, t in enumerate(THREADS):
        for v in (Variant.IMMEDIATE, Variant.DELAYED):
            drop = rel(base[i], table[v][i])
            assert drop < 0.02, f"{v.value} dropped {drop:.1%} at T={t}"
        # Inline pays its fingerprint bill wherever the device is the
        # bottleneck; once locks/bandwidth saturate (past the peak) the
        # hashing hides behind queueing, so only pre-peak counts are a
        # fair inline comparison.
        if THREADS[i] <= THREADS[peak_idx]:
            assert table[Variant.INLINE][i] < 0.75 * base[i], f"T={t}"
        assert table[Variant.INLINE][i] <= 1.05 * base[i]
        # Hybrid sits between the pure modes at every thread count: the
        # foreground pays only the CRC pre-filter (never the SHA-1), so
        # it stays far above inline pre-peak while giving up a bounded
        # slice of baseline; past the peak everything is device-bound.
        hyb = table[Variant.HYBRID][i]
        assert hyb >= 0.9 * table[Variant.INLINE][i], f"T={t}"
        assert hyb <= 1.1 * base[i], f"T={t}"
        assert hyb >= 0.55 * base[i], f"T={t}"
        if THREADS[i] <= THREADS[peak_idx]:
            assert hyb > 2.0 * table[Variant.INLINE][i], f"T={t}"

    # Small files must peak earlier than large files — checked across the
    # two parametrized runs via the peak_at_most bounds.


def run_staged(threads, staging):
    """One small-file point with the front-tier staging log on or off."""
    cfg = Config(device_pages=8192, max_inodes=192 + 64, cpus=8,
                 delayed_interval_ms=0.75, delayed_batch=20000,
                 staging=staging, staging_pages=512)
    fs, dd = make_fs(Variant.DELAYED, cfg)
    spec = small_file_job(nfiles=192, dup_ratio=0.5, threads=threads)
    res = run_workload(fs, spec, dd=dd, destage_workers=1)
    stats = fs.staging.stats() if fs.staging is not None else {}
    return res, stats


def test_fig9_staging(benchmark):
    """Fig. 9 small-file sweep with the staging log absorbing the 4 KB
    sync writes (and their creates): one NT-store + one fence in the
    foreground instead of the full Fig. 1 discipline.

    The committed curve lives in ``fig9_staging.json`` next to
    ``fig9_baseline.json``; ``compare.py --staging`` diffs the T=16
    point so the absorption win cannot silently regress.
    """
    def sweep_staged():
        return {label: [run_staged(t, staging) for t in THREADS]
                for label, staging in (("staged", True), ("direct", False))}

    table = benchmark.pedantic(sweep_staged, rounds=1, iterations=1)
    curves = {label: [res.throughput_mb_s for res, _ in runs]
              for label, runs in table.items()}
    rows = [[label] + [round(v, 1) for v in curve]
            for label, curve in curves.items()]
    emit("fig9_staging", render_table(
        ["mode"] + [f"T={t}" for t in THREADS], rows,
        title="Fig. 9 (small 4KB files, delayed dedup): staging log "
              "on vs off, MB/s vs threads (duplicate ratio 50%)",
    ))
    path = RESULTS / "fig9_staging.json"
    path.write_text(json.dumps({
        "job": "small_file_job",
        "variant": Variant.DELAYED.value,
        "threads": THREADS,
        "throughput_mb_s": {label: [round(v, 3) for v in curve]
                            for label, curve in curves.items()},
    }, indent=2, sort_keys=True) + "\n")

    i16 = THREADS.index(16)
    staged16 = curves["staged"][i16]
    direct16 = curves["direct"][i16]
    # The ISSUE's acceptance bar: >= 3x the 72 MB/s fig9 small-file
    # baseline figure with staging on — and >= 3x the same-run direct
    # T=16 point, which is the stronger (measured, not pinned) claim.
    assert staged16 >= 3 * 72.0, f"staged T=16 = {staged16:.0f} MB/s"
    assert staged16 >= 3 * direct16, \
        f"staged {staged16:.0f} vs direct {direct16:.0f} MB/s at T=16"
    # Every staged point must beat its direct twin: absorption never
    # makes a thread count slower.
    for i, t in enumerate(THREADS):
        assert curves["staged"][i] > curves["direct"][i], f"T={t}"
    # The pool kept up: nothing left staged, every record destaged.
    for res, stats in table["staged"]:
        assert stats["pending_records"] == 0
        assert stats["absorbed"] + stats["absorbed_creates"] \
            == stats["destaged"]
        assert res.destage_records == stats["destaged"]
