"""Ablation: FACT prefix length n (§IV-C "Setting the size of FACT").

The paper fixes n = ceil(log2(device pages)) so the DAA can hold one
entry per block.  This ablation shrinks n below the rule (more prefix
collisions, longer IAA chains, more NVM reads per lookup) to quantify
what the sizing rule buys.  Because delete pointers index the DAA by
block address, n below the rule requires a smaller *logical* device —
we emulate by restricting the block universe instead.
"""

import hashlib

from _common import emit

from repro.analysis import render_table
from repro.dedup.fact import FACT
from repro.nova.layout import Geometry, PAGE_SIZE, Superblock
from repro.pm import DRAM, OPTANE_DCPM, PMDevice, SimClock

N_KEYS = 220


def run_prefix(n_bits: int):
    """Insert N_KEYS distinct fingerprints, then look each one up."""
    total_pages = 256
    dev = PMDevice(total_pages * PAGE_SIZE, model=OPTANE_DCPM,
                   clock=SimClock())
    geo = Geometry.compute(total_pages, max_inodes=16, with_dedup=True,
                           fact_prefix_bits=n_bits)
    Superblock(dev).format(geo)
    fact = FACT(dev, geo)
    fps = [hashlib.sha1(i.to_bytes(8, "little")).digest()
           for i in range(N_KEYS)]
    for i, fp in enumerate(fps):
        fact.insert(fp, 1 + i)
    t0 = dev.clock.now_ns
    steps = 0
    for fp in fps:
        res = fact.lookup(fp)
        assert res.found is not None
        steps += res.steps
    lookup_ns = (dev.clock.now_ns - t0) / N_KEYS
    occ = fact.occupancy()
    return {
        "n": n_bits,
        "daa_slots": 2 ** n_bits,
        "mean_steps": steps / N_KEYS,
        "max_chain": occ["max_chain"],
        "iaa_used": occ["iaa_used"],
        "lookup_ns": lookup_ns,
        "table_kb": occ["bytes"] // 1024,
    }


def test_prefix_length_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: [run_prefix(n) for n in (8, 9, 10, 12)],
        rounds=1, iterations=1)
    rows = [[r["n"], r["daa_slots"], round(r["mean_steps"], 2),
             r["max_chain"], r["iaa_used"], round(r["lookup_ns"]),
             r["table_kb"]]
            for r in results]
    emit("ablation_prefix", render_table(
        ["n bits", "DAA slots", "mean lookup steps", "max chain",
         "IAA used", "ns/lookup", "table KB"],
        rows,
        title="Ablation: FACT prefix length vs lookup cost "
              "(the paper's rule: n = ceil(log2(pages)) = 8 here)",
    ))
    # Longer prefixes => fewer collisions => cheaper lookups,
    # at exponentially growing table size.
    steps = [r["mean_steps"] for r in results]
    assert all(a >= b for a, b in zip(steps, steps[1:])), steps
    assert results[-1]["mean_steps"] < 1.05  # ~all DAA hits at n=12
    assert results[0]["iaa_used"] > results[-1]["iaa_used"]
    sizes = [r["table_kb"] for r in results]
    assert sizes == sorted(sizes) and sizes[-1] >= 8 * sizes[0]
    # Lookup latency tracks NVM reads.
    assert results[0]["lookup_ns"] > results[-1]["lookup_ns"]
