"""Write endurance: the one axis where inline beats offline (§I, §II-B).

The paper concedes that offline deduplication "does not help improve
write endurance": duplicates hit the media before the daemon removes
them, whereas inline dedup never writes them at all.  Optane's endurance
is 10^6-10^7 cycles (Table I), so the bytes-to-media bill matters.

This bench quantifies the trade DeNova makes: per-variant NVM bytes
written and peak per-line wear for the same logical workload.
"""

from _common import emit

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs, make_device
from repro.nova import PAGE_SIZE
from repro.workloads import DataGenerator

N_FILES = 120
ALPHA = 0.6


def run_variant(variant: Variant):
    cfg = Config(device_pages=4096, max_inodes=N_FILES + 32,
                 track_wear=True)
    dev = make_device(cfg)
    fs, _ = make_fs(variant, cfg, dev=dev)
    gen = DataGenerator(alpha=ALPHA, seed=17, dup_pool_size=4)
    for i in range(N_FILES):
        ino = fs.create(f"/f{i}")
        fs.write(ino, 0, gen.file_data(2 * PAGE_SIZE))
    if hasattr(fs, "daemon"):
        fs.daemon.drain()
    return {
        "nvm_bytes": dev.stats.bytes_written,
        "lines_persisted": dev.stats.lines_persisted,
        "wear_max": dev.wear_max(),
        "saving": (fs.space_stats()["space_saving"]
                   if hasattr(fs, "space_stats") else 0.0),
    }


def build():
    return {v: run_variant(v) for v in (Variant.BASELINE, Variant.INLINE,
                                        Variant.IMMEDIATE)}


def test_endurance_comparison(benchmark):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    logical = N_FILES * 2 * PAGE_SIZE
    rows = [[v.value,
             round(d["nvm_bytes"] / (1 << 20), 2),
             round(d["nvm_bytes"] / logical, 2),
             d["lines_persisted"],
             d["wear_max"],
             f"{d['saving']:.0%}"]
            for v, d in data.items()]
    emit("endurance", render_table(
        ["variant", "NVM MB written", "write amp", "lines persisted",
         "max line wear", "space saved"],
        rows,
        title=f"Endurance: NVM bytes for {N_FILES} x 8 KB files at "
              f"alpha={ALPHA} (logical data "
              f"{logical / (1 << 20):.1f} MB)",
    ))
    base = data[Variant.BASELINE]["nvm_bytes"]
    inline = data[Variant.INLINE]["nvm_bytes"]
    offline = data[Variant.IMMEDIATE]["nvm_bytes"]
    # Inline skips the duplicate writes entirely.
    assert inline < (1 - ALPHA * 0.6) * base, \
        "inline must write substantially less than baseline"
    # Offline writes everything first (the paper's endurance concession):
    # at least the baseline's bytes, plus FACT metadata churn.
    assert offline >= base
    # But both end at the same space savings.
    assert abs(data[Variant.INLINE]["saving"]
               - data[Variant.IMMEDIATE]["saving"]) < 0.05


def test_wear_tracking_attributes_hot_lines(benchmark):
    """Rewriting one page concentrates wear; CoW spreads it."""
    def run():
        cfg = Config(device_pages=1024, max_inodes=32, track_wear=True)
        dev = make_device(cfg)
        fs, _ = make_fs(Variant.BASELINE, cfg, dev=dev)
        ino = fs.create("/hot")
        for i in range(50):
            fs.write(ino, 0, bytes([i]) * PAGE_SIZE)
        return dev

    dev = benchmark.pedantic(run, rounds=1, iterations=1)
    # CoW means the data lines wear once each; the *inode tail* line is
    # the hot spot (one update per write).
    assert dev.wear_max() >= 50
    per_line_avg = dev.wear_total() / (dev.size // 64)
    assert dev.wear_max() > 10 * per_line_avg
