"""Reflink / snapshot cost: O(metadata) copies via FACT refcounts.

Not a paper experiment — an extension DeNova's reference counts enable
almost for free — but the numbers make the design's value concrete:
copying N pages by reflink costs a couple of log appends and N atomic
count updates; a byte copy costs N page writes (plus N new pages).
"""

from _common import emit

from repro.analysis import render_table
from repro.core import Config, Variant, make_fs
from repro.nova import PAGE_SIZE
from repro.workloads import DataGenerator

SIZES_PAGES = [4, 16, 64, 256]


def costs(npages: int):
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=4 * npages + 2048,
                                              max_inodes=64))
    gen = DataGenerator(alpha=0.0, seed=44)
    data = gen.file_data(npages * PAGE_SIZE)
    src = fs.create("/src")
    fs.write(src, 0, data)
    fs.daemon.drain()

    t0 = fs.clock.now_ns
    used0 = fs.statfs()["used_pages"]
    bytes0 = fs.dev.stats.bytes_written
    fs.reflink("/src", "/reflinked")
    reflink_ns = fs.clock.now_ns - t0
    reflink_pages = fs.statfs()["used_pages"] - used0
    reflink_bytes = fs.dev.stats.bytes_written - bytes0

    t1 = fs.clock.now_ns
    used1 = fs.statfs()["used_pages"]
    bytes1 = fs.dev.stats.bytes_written
    dst = fs.create("/copied")
    fs.write(dst, 0, data)
    copy_ns = fs.clock.now_ns - t1
    copy_pages = fs.statfs()["used_pages"] - used1
    copy_bytes = fs.dev.stats.bytes_written - bytes1
    return (reflink_ns, reflink_pages, reflink_bytes,
            copy_ns, copy_pages, copy_bytes)


def build_rows():
    rows = []
    for npages in SIZES_PAGES:
        r_ns, r_pages, r_bytes, c_ns, c_pages, c_bytes = costs(npages)
        rows.append([
            f"{npages * 4} KB", round(r_ns / 1000, 1), r_pages, r_bytes,
            round(c_ns / 1000, 1), c_pages, c_bytes,
            round(c_bytes / max(1, r_bytes), 1),
        ])
    return rows


def test_reflink_vs_copy(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit("snapshots_reflink", render_table(
        ["file size", "reflink us", "pages", "NVM B", "copy us",
         "pages", "NVM B", "media-byte ratio"],
        rows,
        title="Reflink vs byte copy (reflink = FACT refcount bumps only)",
    ))
    for (label, r_ns, r_pages, r_bytes, c_ns, c_pages, c_bytes,
         ratio), npages in zip(rows, SIZES_PAGES):
        assert r_pages <= 2, f"{label}: reflink allocated data pages"
        assert c_pages >= npages, label
        # Both are O(pages) in *time* on PM (FACT walks vs page writes),
        # but reflink touches ~2 cache lines per page where copy streams
        # 4 KB — the space and endurance wins are the headline.
        assert r_ns < c_ns, label
        assert ratio > 20, f"{label}: media-byte ratio only {ratio}"
    ratios = [row[7] for row in rows]
    assert ratios[-1] >= ratios[0]


def test_snapshot_churn(benchmark):
    """Daily snapshots of a mutating tree: space grows by deltas only,
    expiry returns it, invariants hold throughout."""
    from repro.failure import check_fs_invariants

    def run():
        fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=16384,
                                                  max_inodes=2048))
        gen = DataGenerator(alpha=0.0, seed=45)
        fs.mkdir("/data")
        inos = []
        for i in range(10):
            ino = fs.create(f"/data/f{i}")
            fs.write(ino, 0, gen.file_data(4 * PAGE_SIZE))
            inos.append(ino)
        fs.daemon.drain()
        mut = DataGenerator(alpha=0.0, seed=46, stream=2)
        growth = []
        for day in range(5):
            fs.snapshot(f"day{day}")
            before = fs.statfs()["used_pages"]
            fs.write(inos[day % 10], 0, mut.file_data(PAGE_SIZE))
            fs.daemon.drain()
            growth.append(fs.statfs()["used_pages"] - before)
        used_full = fs.statfs()["used_pages"]
        for day in range(4):
            fs.delete_snapshot(f"day{day}")
        fs.scrub()
        check_fs_invariants(fs)
        return growth, used_full, fs.statfs()["used_pages"]

    growth, used_full, used_after = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    # Each day's growth is bounded by the delta (1 page) + log metadata.
    assert all(g <= 4 for g in growth), growth
    assert used_after < used_full
