"""Table I: read/write latency and endurance of the memory devices.

Regenerates the device-technology table from the latency profiles the
whole simulator is built on, and validates the orderings the paper's
argument rests on (Optane write ≈ DRAM write; Optane read 2-6x DRAM).
"""

from _common import emit

from repro.analysis import render_table
from repro.pm import DRAM, OPTANE_DCPM, PCM, PMDevice, PROFILES, SimClock, STT_RAM


def make_table() -> str:
    rows = []
    for p in (DRAM, PCM, STT_RAM, OPTANE_DCPM):
        rows.append([
            p.name,
            p.read_latency_ns,
            p.write_latency_ns,
            f"{p.write_endurance:.0e}",
            round(p.read_bw_bytes_per_ns, 1),
            round(p.write_bw_bytes_per_ns, 1),
        ])
    return render_table(
        ["device", "read ns", "write ns", "endurance",
         "read GB/s", "write GB/s"],
        rows,
        title="Table I: memory-device latency profiles (model values)",
    )


def test_table1_devices(benchmark):
    emit("table1_devices", make_table())

    # The relations the paper's argument needs:
    assert OPTANE_DCPM.write_latency_ns <= 3 * DRAM.write_latency_ns
    assert 2 <= OPTANE_DCPM.read_latency_ns / DRAM.read_latency_ns <= 8
    assert OPTANE_DCPM.write_endurance < STT_RAM.write_endurance

    # Wall-clock: one 4 KB persisted device write (the simulator's hot op).
    dev = PMDevice(1 << 20, model=OPTANE_DCPM, clock=SimClock())
    payload = b"x" * 4096

    def op():
        dev.write(0, payload, nt=True)
        dev.sfence()

    benchmark(op)


def test_all_profiles_usable(benchmark):
    """Every Table I profile can host a filesystem."""
    from repro.core import Config, Variant, make_fs

    def build_all():
        results = {}
        for name in PROFILES:
            fs, _ = make_fs(Variant.IMMEDIATE,
                            Config.with_profile(name, device_pages=1024,
                                                max_inodes=64))
            ino = fs.create("/probe")
            fs.write(ino, 0, b"z" * 4096)
            fs.daemon.drain()
            results[name] = fs.clock.now_ns
        return results

    times = benchmark(build_all)
    # Slower media must show up as more simulated time.
    assert times["PCM"] > times["DRAM"]
