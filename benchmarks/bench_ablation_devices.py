"""Ablation: the inline-dedup penalty across device technologies.

The paper's central historical claim (§II-B, §III): NVDedup-era inline
dedup was designed when NVM writes were assumed ~8x slower than DRAM —
on such devices (PCM-class) hiding T_f behind slow writes worked.  On
Optane DC PM, whose write latency approaches DRAM, the same inline
pipeline is catastrophic.  Sweep the Table I profiles and watch the
inline penalty grow as the device gets faster.
"""

from _common import emit

from repro.analysis import InlineModel, render_table
from repro.core import Config, Variant, make_fs
from repro.pm.latency import PROFILES
from repro.workloads import run_workload, small_file_job

# Ordered slowest-write to fastest-write media.
ORDER = ["PCM", "OptaneDCPM", "STT-RAM", "DRAM"]


def inline_drop(profile: str) -> float:
    """Fractional write-throughput loss of inline dedup vs baseline."""
    tputs = {}
    for variant in (Variant.BASELINE, Variant.INLINE):
        cfg = Config.with_profile(profile, device_pages=4096,
                                  max_inodes=256)
        fs, dd = make_fs(variant, cfg)
        res = run_workload(fs, small_file_job(nfiles=150, dup_ratio=0.5),
                           dd=dd)
        tputs[variant] = res.throughput_mb_s
    return 1 - tputs[Variant.INLINE] / tputs[Variant.BASELINE]


def build_rows():
    rows = []
    for name in ORDER:
        model = PROFILES[name]
        drop = inline_drop(name)
        m = InlineModel(model=model)
        rows.append([
            name,
            model.write_latency_ns,
            round(1 / model.write_bw_bytes_per_ns, 2),
            round(m.t_f(4096) / m.t_w(4096), 2),
            f"{drop:.1%}",
        ])
    return rows


def test_inline_penalty_grows_with_device_speed(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    emit("ablation_devices", render_table(
        ["device", "write ns", "ns/B", "T_f/T_w", "inline drop @a=0.5"],
        rows,
        title="Ablation: inline-dedup penalty by device technology "
              "(the paper's thesis: fatal on Optane, tolerable on PCM)",
    ))
    drops = [float(r[4].rstrip("%")) / 100 for r in rows]
    by_dev = dict(zip(ORDER, drops))
    # The penalty ordering follows write speed.
    assert by_dev["PCM"] < by_dev["OptaneDCPM"] < by_dev["DRAM"]
    # On PCM-class media inline is a moderate tax; on Optane it is
    # catastrophic — the quantitative version of the paper's argument.
    assert by_dev["PCM"] < 0.55
    assert by_dev["OptaneDCPM"] > 0.6
    # T_f/T_w tracks the same story.
    ratios = [r[3] for r in rows]
    assert ratios[0] < ratios[1] < ratios[-1]
