#!/usr/bin/env python3
"""Crash-consistency demo: power-fail DeNova mid-deduplication, recover.

Walks the paper's §V-C scenarios live:

1. a crash with queued (not yet deduplicated) write entries — the DWQ is
   rebuilt from the ``dedupe_needed`` flags (Inconsistency Handling I);
2. a crash in the middle of Algorithm 1 — the ``in_process`` entries are
   resumed from step 6 and stale update counts are discarded (II, III);
3. a crash while reclaiming a shared page — the reference counts keep
   the survivor's data safe.

    python examples/crash_recovery_demo.py
"""

from repro import Config, DeNovaFS, Variant, make_fs
from repro.failure import check_fs_invariants
from repro.failure.injector import run_with_crash
from repro.nova import PAGE_SIZE


def page(tag: int) -> bytes:
    return bytes([tag]) * PAGE_SIZE


def scenario_queued_entries() -> None:
    print("=== 1. crash with a full DWQ (Handling I) ===")
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=2048,
                                              max_inodes=64))
    for i in range(5):
        ino = fs.create(f"/f{i}")
        fs.write(ino, 0, page(7) + page(i))
    print(f"  queued entries before crash: {len(fs.dwq)}")
    fs.dev.crash()           # power failure: DRAM (and the DWQ) is gone
    fs.dev.recover_view()
    fs2 = DeNovaFS.mount(fs.dev)
    rep = fs2.last_recovery.extra["dedup"]
    print(f"  DWQ rebuilt from flag scan: {rep['dwq_rebuilt']} entries")
    fs2.daemon.drain()
    st = fs2.space_stats()
    print(f"  dedup completed after recovery: {st['pages_saved']} pages "
          f"saved ({st['space_saving']:.0%})")
    check_fs_invariants(fs2)
    print("  invariants: OK\n")


def scenario_mid_dedup_crash() -> None:
    print("=== 2. crash inside Algorithm 1 (Handling II/III) ===")

    def build():
        fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=2048,
                                                  max_inodes=64))
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page(1) + page(2))
        fs.write(b, 0, page(1) + page(2))

        def scenario():
            fs.daemon.drain()

        return fs.dev, scenario

    # Crash at the 7th persistence event — mid-transaction.
    outcome = run_with_crash(build, point=7, phase="pre", mode="torn")
    print(f"  crashed mid-dedup: {outcome.crashed}")
    fs = DeNovaFS.mount(outcome.dev)
    rep = fs.last_recovery.extra["dedup"]
    print(f"  recovery: resumed {rep['in_process_resumed']} in-process "
          f"entries, discarded {rep['uc_discarded']} stale UCs, "
          f"re-queued {rep['dwq_rebuilt']} targets")
    assert fs.read(fs.lookup("/a"), 0, 2 * PAGE_SIZE) == page(1) + page(2)
    assert fs.read(fs.lookup("/b"), 0, 2 * PAGE_SIZE) == page(1) + page(2)
    fs.daemon.drain()
    print(f"  post-recovery dedup: {fs.space_stats()['pages_saved']} pages "
          f"saved; contents verified byte-for-byte")
    check_fs_invariants(fs)
    print("  invariants: OK\n")


def scenario_shared_reclaim_crash() -> None:
    print("=== 3. crash while reclaiming a shared page (§V-C2) ===")

    def build():
        fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=2048,
                                                  max_inodes=64))
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write(a, 0, page(5))
        fs.write(b, 0, page(5))
        fs.daemon.drain()     # /a and /b now share one physical page

        def scenario():
            fs.unlink("/a")   # must NOT free the page /b still uses

        return fs.dev, scenario

    outcome = run_with_crash(build, point=2, phase="pre")
    fs = DeNovaFS.mount(outcome.dev)
    survivor = fs.read(fs.lookup("/b"), 0, PAGE_SIZE)
    assert survivor == page(5), "shared page lost!"
    print("  /b's data survived the crashed unlink of /a")
    scrub = fs.scrub()
    print(f"  scrubber: removed {scrub['entries_removed']} stale entries, "
          f"freed {scrub['pages_freed']} leaked pages")
    check_fs_invariants(fs)
    print("  invariants: OK\n")


def main() -> None:
    scenario_queued_entries()
    scenario_mid_dedup_crash()
    scenario_shared_reclaim_crash()
    print("all crash scenarios recovered consistently")


if __name__ == "__main__":
    main()
