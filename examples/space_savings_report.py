#!/usr/bin/env python3
"""Storage-efficiency report: dedup savings and metadata footprints.

Sweeps the duplicate ratio, reports achieved space savings, FACT
occupancy (DAA vs IAA, chain lengths), and compares DeNova's DRAM-free
metadata bill against the NVDedup-style DRAM index the paper argues
against (§III).

    python examples/space_savings_report.py
"""

from repro import Config, Variant, make_fs
from repro.analysis import (
    dram_index_overhead,
    fact_overhead,
    nvdedup_metadata_overhead,
    render_table,
)
from repro.workloads import DataGenerator

GB = 1 << 30


def savings_sweep() -> None:
    rows = []
    for alpha in (0.0, 0.25, 0.5, 0.75, 0.9):
        fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=6144,
                                                  max_inodes=1024))
        gen = DataGenerator(alpha=alpha, seed=7)
        for i in range(150):
            ino = fs.create(f"/f{i}")
            fs.write(ino, 0, gen.file_data(4 * 4096))
        fs.daemon.drain()
        st = fs.space_stats()
        occ = st["fact"]
        rows.append([
            f"{alpha:.0%}",
            st["logical_pages"],
            st["physical_pages"],
            f"{st['space_saving']:.1%}",
            occ["daa_used"],
            occ["iaa_used"],
            round(occ["mean_chain"], 2),
        ])
    print(render_table(
        ["dup ratio", "logical", "physical", "saved",
         "DAA used", "IAA used", "mean chain"],
        rows,
        title="DeNova space savings vs duplicate ratio "
              "(150 files x 16 KB)",
    ))


def metadata_bill() -> None:
    rows = []
    for size_gb in (64, 256, 1024):
        size = size_gb * GB
        rows.append([
            f"{size_gb} GB",
            f"{fact_overhead(size):.2%} NVM",
            "0 B",
            f"{nvdedup_metadata_overhead(size):.2%} NVM",
            f"{dram_index_overhead(size) * size / GB:.1f} GB DRAM",
        ])
    print()
    print(render_table(
        ["device", "DeNova FACT", "DeNova DRAM",
         "NVDedup table", "NVDedup DRAM index"],
        rows,
        title="Metadata bills (§III / §IV-C): DeNova trades 2x NVM table "
              "space for zero DRAM",
    ))
    print("\nThe paper's example: a 1 TB device under NVDedup needs ~6 GB "
          "of DRAM\n(18.75% of a 32 GB server) just for the dedup index; "
          "DeNova needs none.")


def main() -> None:
    savings_sweep()
    metadata_bill()


if __name__ == "__main__":
    main()
