#!/usr/bin/env python3
"""Quickstart: mount DeNova, write duplicate-heavy data, watch it dedup.

Runs entirely in simulated time on an emulated Optane DC PM device::

    python examples/quickstart.py
"""

from repro import Config, Variant, make_fs
from repro.analysis import render_table


def main() -> None:
    # A 16 MB emulated Optane device, DeNova with an immediate daemon.
    fs, _dd = make_fs(Variant.IMMEDIATE, Config(device_pages=4096,
                                                max_inodes=256))

    # Three "VM images" that share most of their blocks.
    base = b"OS-IMAGE-BLOCK" * 300          # ~4.1 KB -> 2 pages
    fs.mkdir("/vms")
    for name, patch in [("alpha", b""), ("beta", b"cfg=1"),
                        ("gamma", b"cfg=2")]:
        ino = fs.create(f"/vms/{name}.img")
        fs.write(ino, 0, base * 12)          # 24 shared pages
        if patch:
            fs.write(ino, 90_000, patch)     # small unique tail

    print(f"DWQ backlog before dedup: {len(fs.dwq)} write entries")
    t0 = fs.clock.now_ns

    # The deduplication daemon runs in the background on the real system;
    # here we drive it explicitly.
    fs.daemon.drain()

    stats = fs.space_stats()
    print(f"daemon processed {fs.daemon.stats.nodes_processed} nodes in "
          f"{(fs.clock.now_ns - t0) / 1e6:.2f} ms of simulated time\n")
    print(render_table(
        ["metric", "value"],
        [
            ["logical pages", stats["logical_pages"]],
            ["physical pages", stats["physical_pages"]],
            ["pages saved", stats["pages_saved"]],
            ["dedup ratio", round(stats["dedup_ratio"], 2)],
            ["space saving", f"{stats['space_saving']:.1%}"],
            ["FACT entries", stats["fact"]["entries"]],
            ["FACT bytes", stats["fact"]["bytes"]],
        ],
        title="DeNova space savings",
    ))

    # Data is intact, byte for byte.
    ino = fs.lookup("/vms/beta.img")
    assert fs.read(ino, 0, len(base)) == base
    assert fs.read(ino, 90_000, 5) == b"cfg=1"
    print("\ncontent verification: OK")

    # Clean shutdown persists everything, including the (empty) DWQ.
    fs.unmount()
    print("unmounted cleanly")


if __name__ == "__main__":
    main()
