#!/usr/bin/env python3
"""Inline vs offline deduplication: the paper's core argument, measured.

Runs the same duplicate-heavy workload through all five variants and
prints foreground throughput, dedup savings, and where the fingerprint
time went — the Fig. 8 comparison at example scale, next to the Eq. 2/4
analytical predictions.

    python examples/inline_vs_offline.py
"""

from repro import Config, Variant, make_fs, run_workload, small_file_job
from repro.analysis import InlineModel, render_table


def run_variant(variant: Variant, alpha: float):
    cfg = Config(device_pages=6144, max_inodes=2048)
    fs, dd = make_fs(variant, cfg)
    spec = small_file_job(nfiles=400, dup_ratio=alpha)
    res = run_workload(fs, spec, dd=dd)
    saving = res.space.get("space_saving", 0.0)
    return res, saving, fs


def main() -> None:
    alpha = 0.5
    rows = []
    base_tput = None
    for variant in [Variant.BASELINE, Variant.INLINE,
                    Variant.INLINE_ADAPTIVE, Variant.IMMEDIATE,
                    Variant.DELAYED]:
        res, saving, fs = run_variant(variant, alpha)
        if base_tput is None:
            base_tput = res.throughput_mb_s
        rows.append([
            variant.value,
            round(res.throughput_mb_s, 1),
            f"{res.throughput_mb_s / base_tput:.2%}",
            round(res.mean_op_latency_us, 1),
            f"{saving:.0%}",
            getattr(fs, "fingerprinter", None).strong_count
            if hasattr(fs, "fingerprinter") else 0,
        ])
    print(render_table(
        ["variant", "MB/s", "vs NOVA", "us/file", "saved", "SHA-1 calls"],
        rows,
        title=f"4 KB files, duplicate ratio {alpha:.0%} "
              f"(foreground write throughput)",
    ))

    print("\nEq. 2/4 analytical predictions (4 KB writes):")
    model = InlineModel()
    print(render_table(
        ["quantity", "us"],
        [
            ["T_w (device write)", model.t_w(4096) / 1000],
            ["T_f (strong FP pipeline)", model.t_f(4096) / 1000],
            ["T_fw (weak FP pipeline)", model.t_fw(4096) / 1000],
            ["baseline write (Eq. 2 lhs)",
             model.baseline_write_time(4096) / 1000],
            [f"inline write @ a={alpha}",
             model.inline_write_time(4096, alpha) / 1000],
            [f"adaptive write @ a={alpha}",
             model.adaptive_write_time(4096, alpha) / 1000],
        ],
    ))
    print("\nEq. 1 (T_w << T_f) holds:", model.eq1_holds(4096))
    print("=> offline dedup (DeNova) keeps the write path at device "
          "speed; inline variants pay the fingerprint inline.")


if __name__ == "__main__":
    main()
