#!/usr/bin/env python3
"""Trace-driven testing: record once, replay everywhere.

Records a realistic workload on baseline NOVA, saves the trace, then
replays it against every dedup variant with digest verification —
demonstrating that deduplication (inline or offline, with background
daemon interleaving) is observationally invisible, and measuring what
each variant paid for the same logical work.

    python examples/trace_workflow.py
"""

import tempfile

from repro import Config, Variant, make_fs
from repro.analysis import render_table
from repro.nova import PAGE_SIZE
from repro.workloads import DataGenerator, Trace, TracedFS, replay


def record_reference_workload() -> Trace:
    fs, _ = make_fs(Variant.BASELINE, Config(device_pages=4096,
                                             max_inodes=256))
    tfs = TracedFS(fs)
    gen = DataGenerator(alpha=0.6, seed=20, dup_pool_size=6)

    tfs.mkdir("/projects")
    inos = {}
    for i in range(12):
        path = f"/projects/doc{i}"
        inos[path] = tfs.create(path)
        tfs.write(inos[path], 0, gen.file_data(3 * PAGE_SIZE))
    # Edits, reads, reorganization.
    tfs.write(inos["/projects/doc0"], 500, b"edited section " * 20)
    tfs.read(inos["/projects/doc0"], 0, PAGE_SIZE)
    tfs.truncate(inos["/projects/doc1"], PAGE_SIZE // 2)
    tfs.rename("/projects/doc2", "/projects/doc2_final")
    tfs.link("/projects/doc3", "/projects/doc3_alias")
    tfs.unlink("/projects/doc4")
    for i in range(5, 9):
        tfs.read(inos[f"/projects/doc{i}"], 0, 3 * PAGE_SIZE)
    return tfs.trace


def main() -> None:
    trace = record_reference_workload()
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as fh:
        path = fh.name
    trace.save(path)
    reloaded = Trace.load(path)
    print(f"recorded {len(trace)} operations "
          f"({sum(1 for o in trace.ops if o.op == 'read')} verified "
          f"reads); saved to {path}\n")

    rows = []
    for variant in (Variant.BASELINE, Variant.IMMEDIATE, Variant.INLINE,
                    Variant.INLINE_ADAPTIVE):
        fs, _ = make_fs(variant, Config(device_pages=4096, max_inodes=256))
        t0 = fs.clock.now_ns
        counters = replay(fs, reloaded, verify=True, drain_every=4)
        elapsed_ms = (fs.clock.now_ns - t0) / 1e6
        saving = (fs.space_stats()["space_saving"]
                  if hasattr(fs, "space_stats") else 0.0)
        rows.append([
            variant.value,
            counters["applied"],
            counters["verified_reads"],
            round(elapsed_ms, 2),
            f"{saving:.0%}",
        ])
    print(render_table(
        ["variant", "ops applied", "reads verified", "sim ms", "saved"],
        rows,
        title="One trace, four filesystems — identical bytes everywhere",
    ))
    print("\nAll digests matched: dedup never changed a single byte "
          "an application could observe.")


if __name__ == "__main__":
    main()
