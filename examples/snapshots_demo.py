#!/usr/bin/env python3
"""Snapshots and reflinks: what FACT reference counting buys for free.

DeNova's dedup metadata already counts references per data page, which
makes reflink copies (``cp --reflink``) and whole-tree snapshots nearly
free extensions: a snapshot bumps refcounts instead of copying bytes.

    python examples/snapshots_demo.py
"""

from repro import Config, Variant, make_fs
from repro.analysis import render_table
from repro.nova import PAGE_SIZE
from repro.nova.fs import ReadOnlyFile
from repro.workloads import DataGenerator


def main() -> None:
    fs, _ = make_fs(Variant.IMMEDIATE, Config(device_pages=8192,
                                              max_inodes=512))
    gen = DataGenerator(alpha=0.2, seed=31, dup_pool_size=4)

    # A working tree: a small "project" of 8 files.
    fs.mkdir("/project")
    for i in range(8):
        ino = fs.create(f"/project/src{i}.c")
        fs.write(ino, 0, gen.file_data(3 * PAGE_SIZE))
    fs.daemon.drain()
    used0 = fs.statfs()["used_pages"]

    # Nightly snapshots around ongoing edits.
    timeline = []
    editor = DataGenerator(alpha=0.0, seed=32, stream=9)
    for day in ("mon", "tue", "wed"):
        rep = fs.snapshot(day)
        fs.write(fs.lookup("/project/src0.c"), 0,
                 editor.file_data(PAGE_SIZE))
        fs.daemon.drain()
        timeline.append([day, rep["files"],
                         fs.statfs()["used_pages"] - used0])
    print(render_table(
        ["snapshot", "files", "pages grown since start"],
        timeline,
        title="Three snapshots + daily edits "
              f"(working set = {used0} pages)",
    ))

    # Point-in-time reads: each snapshot kept its version of src0.c.
    versions = {
        day: fs.read(fs.lookup(f"/.snapshots/{day}/project/src0.c"),
                     0, 16)
        for day in ("mon", "tue", "wed")
    }
    assert versions["mon"] != versions["wed"]
    print("\nsnapshot versions of src0.c differ as expected "
          f"({len(set(versions.values()))} distinct versions)")

    # Snapshots are immutable.
    try:
        fs.write(fs.lookup("/.snapshots/mon/project/src0.c"), 0, b"hack")
    except ReadOnlyFile as exc:
        print(f"write into a snapshot rejected: {exc}")

    # Retention: drop the oldest snapshot, space returns.
    before = fs.statfs()["used_pages"]
    fs.delete_snapshot("mon")
    fs.scrub()
    print(f"deleted 'mon': {before - fs.statfs()['used_pages']} pages "
          f"returned; remaining snapshots: {fs.list_snapshots()}")

    # Reflink: instant clone of the whole current file.
    fs.reflink("/project/src1.c", "/project/src1_experiment.c")
    st = fs.space_stats()
    print(f"\nreflink clone added 0 data pages "
          f"(logical {st['logical_pages']} vs physical "
          f"{st['physical_pages']} pages, "
          f"saving {st['space_saving']:.0%})")
    assert fs.deep_verify()["clean"]
    print("deep verify: all canonical pages match their fingerprints")


if __name__ == "__main__":
    main()
